open Dlink_isa
module Body = Dlink_obj.Body

type ctx = {
  resolve_import : string -> Addr.t;
  resolve_local : string -> Addr.t;
  local_data : Addr.t * int;
  shared_data : Addr.t * int;
  fresh_site : unit -> int;
  resolve_vtable_slot : string -> int -> Addr.t;
  note_import_call_site : offset:int -> string -> unit;
}

let sizing_ctx =
  {
    resolve_import = (fun _ -> 0);
    resolve_local = (fun _ -> 0);
    local_data = (0, 8);
    shared_data = (0, 8);
    fresh_site = (fun () -> 0);
    resolve_vtable_slot = (fun _ _ -> 0);
    note_import_call_site = (fun ~offset:_ _ -> ());
  }

let region_ref ctx (base, size) =
  (* Data regions must hold at least one 8-byte word. *)
  let size = max size 8 in
  Insn.Region { site = ctx.fresh_site (); base; size }

let lower_body asm ctx ops =
  let rec go ops = List.iter op ops
  and op = function
    | Body.Compute n ->
        for _ = 1 to n do
          Asm.emit asm Asm.P_alu
        done
    | Body.Touch { loads; stores } ->
        for _ = 1 to loads do
          Asm.emit asm (Asm.P_load (region_ref ctx ctx.local_data))
        done;
        for _ = 1 to stores do
          Asm.emit asm (Asm.P_store (region_ref ctx ctx.local_data))
        done
    | Body.Touch_shared { loads; stores } ->
        for _ = 1 to loads do
          Asm.emit asm (Asm.P_load (region_ref ctx ctx.shared_data))
        done;
        for _ = 1 to stores do
          Asm.emit asm (Asm.P_store (region_ref ctx ctx.shared_data))
        done
    | Body.Call_local name ->
        Asm.emit asm (Asm.P_call (Asm.To_addr (ctx.resolve_local name)))
    | Body.Call_import name ->
        ctx.note_import_call_site ~offset:(Asm.size asm) name;
        Asm.emit asm (Asm.P_call (Asm.To_addr (ctx.resolve_import name)))
    | Body.Call_virtual { vtable; slot } ->
        Asm.emit asm (Asm.P_call_mem (ctx.resolve_vtable_slot vtable slot))
    | Body.Loop { mean_iters; body } ->
        let head = Asm.fresh_label asm in
        Asm.place asm head;
        go body;
        let p_taken = if mean_iters <= 1.0 then 0.0 else 1.0 -. (1.0 /. mean_iters) in
        Asm.emit asm
          (Asm.P_cond { target = Asm.To_label head; site = ctx.fresh_site (); p_taken })
    | Body.If { p; then_; else_ } ->
        let lbl_else = Asm.fresh_label asm in
        (* The branch is taken to skip the then-block, so taken prob = 1-p. *)
        Asm.emit asm
          (Asm.P_cond
             { target = Asm.To_label lbl_else; site = ctx.fresh_site (); p_taken = 1.0 -. p });
        go then_;
        if else_ = [] then Asm.place asm lbl_else
        else begin
          let lbl_end = Asm.fresh_label asm in
          Asm.emit asm (Asm.P_jmp (Asm.To_label lbl_end));
          Asm.place asm lbl_else;
          go else_;
          Asm.place asm lbl_end
        end
  in
  go ops;
  Asm.emit asm Asm.P_ret

let function_size ops =
  let asm = Asm.create () in
  lower_body asm sizing_ctx ops;
  Asm.size asm
