(** Translation lookaside buffer model (4 KiB pages). *)

open Dlink_isa

type t

val create : name:string -> entries:int -> ways:int -> t
(** [entries / ways] must be a power of two. *)

val name : t -> string
val entries : t -> int

val access : t -> Addr.t -> bool
(** [true] on hit; fills on miss. *)

val present : t -> Addr.t -> bool
val flush : t -> unit
