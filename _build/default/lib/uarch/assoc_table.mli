(** Generic set-associative table with true-LRU replacement.

    The building block for caches, TLBs, the BTB, and the ABTB.  Keys are
    already-index-reduced integers (line numbers, page numbers, PCs); the
    table hashes them across sets and tracks per-way recency. *)

type 'v t

val create : sets:int -> ways:int -> 'v t
(** Both must be positive; [sets] must be a power of two. *)

val sets : 'v t -> int
val ways : 'v t -> int
val capacity : 'v t -> int

val find : 'v t -> int -> 'v option
(** Lookup; refreshes LRU position on hit. *)

val probe : 'v t -> int -> 'v option
(** Lookup without touching LRU state. *)

val insert : 'v t -> int -> 'v -> unit
(** Insert or overwrite; evicts the set's LRU victim when full. *)

val touch : 'v t -> int -> 'v -> bool
(** Combined lookup-or-insert: returns [true] on hit (LRU refreshed), and
    inserts the given value on miss returning [false].  This is the
    cache/TLB access pattern. *)

val clear : 'v t -> unit
val valid_count : 'v t -> int
val iter : (int -> 'v -> unit) -> 'v t -> unit
