(** Microarchitecture geometry and penalty parameters. *)

type cache_geom = { size_bytes : int; ways : int }
type tlb_geom = { entries : int; ways : int }

type penalties = {
  l1_miss : int;  (** extra cycles for an L1 miss that hits L2 *)
  l2_miss : int;  (** extra cycles for an access that misses L2 *)
  tlb_miss : int;  (** page-walk cycles *)
  mispredict : int;  (** pipeline flush cycles *)
  btb_fill : int;  (** fetch-bubble cycles on a direct-branch BTB miss *)
}

type t = {
  l1i : cache_geom;
  l1d : cache_geom;
  l2 : cache_geom;
  itlb : tlb_geom;
  dtlb : tlb_geom;
  btb_sets : int;
  btb_ways : int;
  gshare_table_bits : int;
  gshare_history_bits : int;
  ras_depth : int;
  penalties : penalties;
}

val xeon_e5450 : t
(** Approximation of the paper's evaluation machine (Intel Xeon E5450,
    Harpertown): 32 KiB 8-way L1I and L1D, 6 MiB 24-way L2 per die,
    128-entry ITLB, 256-entry DTLB. *)

val small : t
(** A deliberately small machine for fast unit tests. *)
