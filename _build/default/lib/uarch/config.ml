type cache_geom = { size_bytes : int; ways : int }
type tlb_geom = { entries : int; ways : int }

type penalties = {
  l1_miss : int;
  l2_miss : int;
  tlb_miss : int;
  mispredict : int;
  btb_fill : int;
}

type t = {
  l1i : cache_geom;
  l1d : cache_geom;
  l2 : cache_geom;
  itlb : tlb_geom;
  dtlb : tlb_geom;
  btb_sets : int;
  btb_ways : int;
  gshare_table_bits : int;
  gshare_history_bits : int;
  ras_depth : int;
  penalties : penalties;
}

let xeon_e5450 =
  {
    l1i = { size_bytes = 32 * 1024; ways = 8 };
    l1d = { size_bytes = 32 * 1024; ways = 8 };
    l2 = { size_bytes = 6 * 1024 * 1024; ways = 24 };
    itlb = { entries = 128; ways = 4 };
    dtlb = { entries = 256; ways = 4 };
    btb_sets = 2048;
    btb_ways = 4;
    gshare_table_bits = 14;
    gshare_history_bits = 10;
    ras_depth = 16;
    penalties =
      { l1_miss = 12; l2_miss = 200; tlb_miss = 30; mispredict = 15; btb_fill = 2 };
  }

let small =
  {
    l1i = { size_bytes = 4 * 1024; ways = 2 };
    l1d = { size_bytes = 4 * 1024; ways = 2 };
    l2 = { size_bytes = 64 * 1024; ways = 4 };
    itlb = { entries = 16; ways = 2 };
    dtlb = { entries = 16; ways = 2 };
    btb_sets = 16;
    btb_ways = 2;
    gshare_table_bits = 8;
    gshare_history_bits = 6;
    ras_depth = 8;
    penalties =
      { l1_miss = 12; l2_miss = 200; tlb_miss = 30; mispredict = 15; btb_fill = 2 };
  }
