lib/uarch/cache.ml: Addr Assoc_table Dlink_isa
