lib/uarch/btb.ml: Addr Assoc_table Dlink_isa
