lib/uarch/bloom.mli: Addr Dlink_isa
