lib/uarch/config.mli:
