lib/uarch/config.ml:
