lib/uarch/bloom.ml: Addr Bytes Char Dlink_isa Dlink_util Float
