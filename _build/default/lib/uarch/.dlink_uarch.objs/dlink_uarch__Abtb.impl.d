lib/uarch/abtb.ml: Addr Assoc_table Dlink_isa Option
