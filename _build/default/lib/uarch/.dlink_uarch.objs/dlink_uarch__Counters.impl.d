lib/uarch/counters.ml: Format
