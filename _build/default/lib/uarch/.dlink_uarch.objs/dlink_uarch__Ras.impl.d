lib/uarch/ras.ml: Addr Array Dlink_isa
