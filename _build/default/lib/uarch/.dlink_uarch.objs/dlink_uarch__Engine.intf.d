lib/uarch/engine.mli: Addr Cache Config Counters Dlink_isa Dlink_mach Event Tlb
