lib/uarch/tlb.mli: Addr Dlink_isa
