lib/uarch/cache.mli: Addr Dlink_isa
