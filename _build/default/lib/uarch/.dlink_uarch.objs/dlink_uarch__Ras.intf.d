lib/uarch/ras.mli: Addr Dlink_isa
