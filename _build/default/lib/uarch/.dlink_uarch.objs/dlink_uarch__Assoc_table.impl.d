lib/uarch/assoc_table.ml: Array Dlink_util
