lib/uarch/direction.mli: Addr Dlink_isa
