lib/uarch/abtb.mli: Addr Dlink_isa
