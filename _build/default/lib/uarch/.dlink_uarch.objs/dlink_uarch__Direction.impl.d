lib/uarch/direction.ml: Addr Bool Bytes Char Dlink_isa
