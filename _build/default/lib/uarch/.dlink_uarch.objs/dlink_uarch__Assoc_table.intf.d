lib/uarch/assoc_table.mli:
