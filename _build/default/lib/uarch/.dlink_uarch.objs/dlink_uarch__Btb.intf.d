lib/uarch/btb.mli: Addr Dlink_isa
