lib/uarch/engine.ml: Btb Cache Config Counters Direction Dlink_mach Event Ras Tlb
