lib/uarch/tlb.ml: Addr Assoc_table Dlink_isa
