open Dlink_isa

type t = Addr.t Assoc_table.t

let create ~sets ~ways : t = Assoc_table.create ~sets ~ways
let predict t pc = Assoc_table.find t pc
let update t pc target = Assoc_table.insert t pc target
let flush = Assoc_table.clear
let valid_count = Assoc_table.valid_count
