module Site_hash = Dlink_util.Site_hash

type 'v t = {
  sets : int;
  ways : int;
  keys : int array; (* sets*ways; -1 = invalid *)
  values : 'v option array;
  stamps : int array; (* LRU recency; larger = more recent *)
  mutable tick : int;
}

let create ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Assoc_table.create: non-positive size";
  if sets land (sets - 1) <> 0 then
    invalid_arg "Assoc_table.create: sets must be a power of two";
  let n = sets * ways in
  {
    sets;
    ways;
    keys = Array.make n (-1);
    values = Array.make n None;
    stamps = Array.make n 0;
    tick = 0;
  }

let sets t = t.sets
let ways t = t.ways
let capacity t = t.sets * t.ways

(* Real structures index with the key's low bits (sequential lines map to
   sequential sets), which is what conflict behaviour depends on. *)
let set_of t key = key land (t.sets - 1)

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let find_slot t key =
  let base = set_of t key * t.ways in
  let rec scan w = if w >= t.ways then -1 else if t.keys.(base + w) = key then base + w else scan (w + 1) in
  scan 0

let find t key =
  let i = find_slot t key in
  if i < 0 then None
  else begin
    t.stamps.(i) <- next_tick t;
    t.values.(i)
  end

let probe t key =
  let i = find_slot t key in
  if i < 0 then None else t.values.(i)

let victim_slot t key =
  let base = set_of t key * t.ways in
  (* First invalid way, otherwise the least recently used. *)
  let rec invalid w =
    if w >= t.ways then None
    else if t.keys.(base + w) = -1 then Some (base + w)
    else invalid (w + 1)
  in
  match invalid 0 with
  | Some i -> i
  | None ->
      let best = ref base in
      for w = 1 to t.ways - 1 do
        if t.stamps.(base + w) < t.stamps.(!best) then best := base + w
      done;
      !best

let insert t key v =
  let i = find_slot t key in
  let i = if i >= 0 then i else victim_slot t key in
  t.keys.(i) <- key;
  t.values.(i) <- Some v;
  t.stamps.(i) <- next_tick t

let touch t key v =
  let i = find_slot t key in
  if i >= 0 then begin
    t.stamps.(i) <- next_tick t;
    true
  end
  else begin
    insert t key v;
    false
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) (-1);
  Array.fill t.values 0 (Array.length t.values) None;
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.tick <- 0

let valid_count t =
  Array.fold_left (fun acc k -> if k >= 0 then acc + 1 else acc) 0 t.keys

let iter f t =
  Array.iteri
    (fun i k ->
      if k >= 0 then match t.values.(i) with Some v -> f k v | None -> ())
    t.keys
