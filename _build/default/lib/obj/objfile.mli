(** Object files: the unit the loader maps into the address space.

    A module (an executable or a shared library) bundles named functions,
    a private data region, and a declared import set.  Imports are the union
    of symbols referenced by function bodies and [extra_imports] — symbols
    linked against but never called at run time, which make the PLT sparse
    exactly as the paper observes for real binaries (§2). *)

type func = { fname : string; exported : bool; body : Body.op list }

type ifunc = { iname : string; candidates : string list }
(** A GNU indirect function (§2.4.1): an exported symbol whose definition
    is chosen from [candidates] (local functions, best-first order) based
    on the hardware capability level known at load time.  Calls to an
    ifunc route through the PLT exactly like ordinary dynamic symbols, so
    the trampoline-skip hardware accelerates them identically. *)

type vtable = { vname : string; entries : string list }
(** A function-pointer table placed in the module's data segment and
    relocated at load time; [entries] are global symbol names.  The target
    of [Body.Call_virtual] dispatch. *)

type t = private {
  name : string;
  funcs : func list;
  ifuncs : ifunc list;
  vtables : vtable list;
  data_bytes : int;
  extra_imports : string list;
}

val create :
  name:string ->
  ?data_bytes:int ->
  ?extra_imports:string list ->
  ?ifuncs:ifunc list ->
  ?vtables:vtable list ->
  func list ->
  (t, string) result
(** Validates: non-empty name, unique function names, positive data size,
    well-formed bodies, local calls that resolve within the module, ifunc
    candidates that exist locally, and virtual calls that reference a
    declared vtable slot. *)

val create_exn :
  name:string ->
  ?data_bytes:int ->
  ?extra_imports:string list ->
  ?ifuncs:ifunc list ->
  ?vtables:vtable list ->
  func list ->
  t
(** Like {!create} but raises [Invalid_argument] with the failure reason. *)

val find_vtable : t -> string -> vtable option

val imports : t -> string list
(** All imported symbols in deterministic order (body references first, then
    [extra_imports]), deduplicated.  Self-exported symbols are excluded. *)

val exports : t -> string list
val find_func : t -> string -> func option
val func_count : t -> int
