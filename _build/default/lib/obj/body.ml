type op =
  | Compute of int
  | Touch of { loads : int; stores : int }
  | Touch_shared of { loads : int; stores : int }
  | Call_local of string
  | Call_import of string
  | Call_virtual of { vtable : string; slot : int }
  | Loop of { mean_iters : float; body : op list }
  | If of { p : float; then_ : op list; else_ : op list }

let rec validate_op = function
  | Compute n -> if n < 0 then Error "Compute: negative count" else Ok ()
  | Touch { loads; stores } | Touch_shared { loads; stores } ->
      if loads < 0 || stores < 0 then Error "Touch: negative count" else Ok ()
  | Call_local name | Call_import name ->
      if name = "" then Error "Call: empty symbol name" else Ok ()
  | Call_virtual { vtable; slot } ->
      if vtable = "" then Error "Call_virtual: empty table name"
      else if slot < 0 then Error "Call_virtual: negative slot"
      else Ok ()
  | Loop { mean_iters; body } ->
      if mean_iters < 1.0 then Error "Loop: mean_iters must be >= 1"
      else validate body
  | If { p; then_; else_ } ->
      if p < 0.0 || p > 1.0 then Error "If: probability out of range"
      else (
        match validate then_ with Error _ as e -> e | Ok () -> validate else_)

and validate ops =
  List.fold_left
    (fun acc op -> match acc with Error _ -> acc | Ok () -> validate_op op)
    (Ok ()) ops

let dedup names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.replace seen n ();
        true
      end)
    names

let rec collect f ops =
  List.concat_map
    (function
      | Loop { body; _ } -> collect f body
      | If { then_; else_; _ } -> collect f then_ @ collect f else_
      | op -> f op)
    ops

let imports ops =
  dedup (collect (function Call_import s -> [ s ] | _ -> []) ops)

let local_calls ops =
  dedup (collect (function Call_local s -> [ s ] | _ -> []) ops)

let rec instruction_count_static ops =
  List.fold_left (fun acc op -> acc + op_count op) 0 ops

and op_count = function
  | Compute n -> n
  | Touch { loads; stores } | Touch_shared { loads; stores } -> loads + stores
  | Call_local _ | Call_import _ | Call_virtual _ -> 1
  | Loop { body; _ } -> instruction_count_static body + 1
  | If { then_; else_; _ } ->
      1
      + instruction_count_static then_
      + (if else_ = [] then 0 else 1 + instruction_count_static else_)
