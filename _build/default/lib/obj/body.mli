(** Structured function bodies.

    Object files carry a small structured IR rather than raw instructions;
    the linker's code generator lowers it to {!Dlink_isa.Insn.t} once module
    base addresses are known.  Control flow (loops, branches) uses
    probabilistic per-site patterns so synthetic code exhibits realistic
    variance while remaining exactly reproducible. *)

type op =
  | Compute of int  (** [n] generic ALU instructions *)
  | Touch of { loads : int; stores : int }
      (** accesses into the module's data region *)
  | Touch_shared of { loads : int; stores : int }
      (** accesses into the process-wide shared heap region *)
  | Call_local of string  (** direct call to a function in the same module *)
  | Call_import of string  (** call to an external symbol (via PLT when dynamic) *)
  | Call_virtual of { vtable : string; slot : int }
      (** C++-style dispatch: an indirect call through a function-pointer
          table in the module's data segment (§2.4.2).  Unlike PLT calls,
          the lowered instruction sequence is a memory-indirect {e call},
          so the trampoline-skip hardware neither accelerates nor
          misfires on it *)
  | Loop of { mean_iters : float; body : op list }
      (** back-edge taken with probability [1 - 1/mean_iters]; iteration
          counts are geometric with the given mean *)
  | If of { p : float; then_ : op list; else_ : op list }
      (** two-sided branch taken with probability [p] *)

val validate : op list -> (unit, string) result
(** Checks probabilities are in range and loop means are [>= 1]. *)

val imports : op list -> string list
(** External symbols referenced (deduplicated, in first-use order). *)

val local_calls : op list -> string list
(** Local functions referenced (deduplicated, in first-use order). *)

val instruction_count_static : op list -> int
(** Number of instructions the body lowers to (static count, not dynamic). *)
