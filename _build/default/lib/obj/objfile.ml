type func = { fname : string; exported : bool; body : Body.op list }
type ifunc = { iname : string; candidates : string list }
type vtable = { vname : string; entries : string list }

type t = {
  name : string;
  funcs : func list;
  ifuncs : ifunc list;
  vtables : vtable list;
  data_bytes : int;
  extra_imports : string list;
}

let rec body_virtual_calls ops =
  List.concat_map
    (function
      | Body.Loop { body; _ } -> body_virtual_calls body
      | Body.If { then_; else_; _ } ->
          body_virtual_calls then_ @ body_virtual_calls else_
      | Body.Call_virtual { vtable; slot } -> [ (vtable, slot) ]
      | Body.Compute _ | Body.Touch _ | Body.Touch_shared _ | Body.Call_local _
      | Body.Call_import _ ->
          [])
    ops

let validate t =
  if t.name = "" then Error "module name must be non-empty"
  else if t.data_bytes < 0 then Error "data_bytes must be non-negative"
  else begin
    let names = Hashtbl.create 16 in
    let dup =
      List.find_opt
        (fun f ->
          if Hashtbl.mem names f.fname then true
          else begin
            Hashtbl.replace names f.fname ();
            false
          end)
        t.funcs
    in
    match dup with
    | Some f -> Error (Printf.sprintf "duplicate function %s in %s" f.fname t.name)
    | None ->
        let bad_body =
          List.find_map
            (fun f ->
              match Body.validate f.body with
              | Error e -> Some (Printf.sprintf "%s.%s: %s" t.name f.fname e)
              | Ok () -> None)
            t.funcs
        in
        (match bad_body with
        | Some e -> Error e
        | None ->
            let unresolved =
              List.find_map
                (fun f ->
                  List.find_map
                    (fun callee ->
                      if Hashtbl.mem names callee then None
                      else
                        Some
                          (Printf.sprintf "%s.%s calls unknown local %s" t.name
                             f.fname callee))
                    (Body.local_calls f.body))
                t.funcs
            in
            (match unresolved with
            | Some e -> Error e
            | None ->
                let bad_ifunc =
                  List.find_map
                    (fun i ->
                      if i.iname = "" then Some "ifunc with empty name"
                      else if Hashtbl.mem names i.iname then
                        Some
                          (Printf.sprintf "ifunc %s collides with a function in %s"
                             i.iname t.name)
                      else if i.candidates = [] then
                        Some (Printf.sprintf "ifunc %s has no candidates" i.iname)
                      else
                        List.find_map
                          (fun c ->
                            if Hashtbl.mem names c then None
                            else
                              Some
                                (Printf.sprintf
                                   "ifunc %s candidate %s is not a local function"
                                   i.iname c))
                          i.candidates)
                    t.ifuncs
                in
                (match bad_ifunc with
                | Some e -> Error e
                | None ->
                    let vtbl = Hashtbl.create 8 in
                    List.iter
                      (fun v -> Hashtbl.replace vtbl v.vname (List.length v.entries))
                      t.vtables;
                    let bad_virtual =
                      List.find_map
                        (fun f ->
                          List.find_map
                            (fun (vname, slot) ->
                              match Hashtbl.find_opt vtbl vname with
                              | None ->
                                  Some
                                    (Printf.sprintf "%s.%s uses unknown vtable %s"
                                       t.name f.fname vname)
                              | Some n when slot >= n ->
                                  Some
                                    (Printf.sprintf
                                       "%s.%s vtable %s slot %d out of range"
                                       t.name f.fname vname slot)
                              | Some _ -> None)
                            (body_virtual_calls f.body))
                        t.funcs
                    in
                    (match bad_virtual with Some e -> Error e | None -> Ok ()))))
  end

let create ~name ?(data_bytes = 4096) ?(extra_imports = []) ?(ifuncs = [])
    ?(vtables = []) funcs =
  let t = { name; funcs; ifuncs; vtables; data_bytes; extra_imports } in
  match validate t with Ok () -> Ok t | Error e -> Error e

let create_exn ~name ?data_bytes ?extra_imports ?ifuncs ?vtables funcs =
  match create ~name ?data_bytes ?extra_imports ?ifuncs ?vtables funcs with
  | Ok t -> t
  | Error e -> invalid_arg ("Objfile.create: " ^ e)

let find_vtable t name = List.find_opt (fun v -> v.vname = name) t.vtables

let exports t =
  List.filter_map (fun f -> if f.exported then Some f.fname else None) t.funcs
  @ List.map (fun i -> i.iname) t.ifuncs

let imports t =
  let own = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace own f.fname ()) t.funcs;
  List.iter (fun i -> Hashtbl.replace own i.iname ()) t.ifuncs;
  let seen = Hashtbl.create 16 in
  let keep s =
    if Hashtbl.mem own s || Hashtbl.mem seen s then false
    else begin
      Hashtbl.replace seen s ();
      true
    end
  in
  let from_bodies =
    List.concat_map (fun f -> Body.imports f.body) t.funcs |> List.filter keep
  in
  (* Virtual-table entries that are not local become load-time data
     relocations, not PLT imports; they still must resolve globally, which
     the loader checks separately. *)
  let extra = List.filter keep t.extra_imports in
  from_bodies @ extra

let find_func t name = List.find_opt (fun f -> f.fname = name) t.funcs
let func_count t = List.length t.funcs
