lib/obj/body.ml: Hashtbl List
