lib/obj/objfile.mli: Body
