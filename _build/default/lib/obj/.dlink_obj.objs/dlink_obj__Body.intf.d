lib/obj/body.mli:
