lib/obj/objfile.ml: Body Hashtbl List Printf
