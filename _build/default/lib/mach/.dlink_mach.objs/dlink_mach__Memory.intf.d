lib/mach/memory.mli: Addr Dlink_isa
