lib/mach/event.ml: Addr Dlink_isa Format Printf
