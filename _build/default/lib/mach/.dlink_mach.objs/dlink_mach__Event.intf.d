lib/mach/event.mli: Addr Dlink_isa Format
