lib/mach/process.ml: Addr Array Dlink_isa Dlink_linker Dlink_util Event Insn List Memory Printf
