lib/mach/process.mli: Addr Dlink_isa Dlink_linker Event Memory
