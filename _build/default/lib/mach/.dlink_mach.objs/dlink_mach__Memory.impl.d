lib/mach/memory.ml: Dlink_util Hashtbl Option
