open Dlink_isa

type branch =
  | Call_direct of { target : Addr.t; arch_target : Addr.t }
  | Call_indirect of { target : Addr.t; slot : Addr.t }
  | Jump_direct of { target : Addr.t }
  | Jump_indirect of { target : Addr.t; slot : Addr.t }
  | Jump_resolver of { target : Addr.t }
  | Cond_branch of { target : Addr.t; taken : bool }
  | Return of { target : Addr.t }

type t = {
  pc : Addr.t;
  size : int;
  in_plt : bool;
  load : Addr.t option;
  load2 : Addr.t option;
  store : Addr.t option;
  branch : branch option;
}

let branch_target = function
  | Call_direct { target; _ }
  | Call_indirect { target; _ }
  | Jump_direct { target }
  | Jump_indirect { target; _ }
  | Jump_resolver { target }
  | Cond_branch { target; _ }
  | Return { target } ->
      target

let is_indirect = function
  | Call_indirect _ | Jump_indirect _ | Jump_resolver _ | Return _ -> true
  | Call_direct _ | Jump_direct _ | Cond_branch _ -> false

let pp ppf t =
  Format.fprintf ppf "@[pc=%a size=%d%s%s@]" Addr.pp t.pc t.size
    (if t.in_plt then " [plt]" else "")
    (match t.branch with
    | None -> ""
    | Some b -> Printf.sprintf " -> 0x%x" (branch_target b))
