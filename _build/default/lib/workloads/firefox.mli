(** Firefox + Peacekeeper browser-benchmark model.

    Profile targets (paper): 2457 distinct trampolines but only 0.72
    trampoline instructions PKI — execution dominated by computation
    kernels; a shallow Figure 4 curve; five Peacekeeper categories whose
    scores (fps or ops, higher better) improve by 0.8–2.7 % (Table 5). *)

val name : string
val spec : ?seed:int -> unit -> Spec.t
val workload : ?seed:int -> unit -> Dlink_core.Workload.t

val request_types : string list
(** The five Peacekeeper categories. *)

val score_unit : string -> string
(** "fps" for rendering categories, "ops" otherwise. *)

val scores :
  ?anchor:Dlink_core.Experiment.run ->
  Dlink_core.Experiment.run ->
  (string * string * float) list
(** Peacekeeper-style scores per category: [(category, unit, score)].
    Scores are inversely proportional to the category's mean iteration
    latency and anchored so that the [anchor] run (default: the run
    itself) reports exactly the paper's Base magnitudes — the anchoring is
    a unit conversion; the base-vs-enhanced ratio is the measurement. *)
