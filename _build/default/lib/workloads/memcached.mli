(** Memcached + CloudSuite client model.

    Profile targets (paper): 33 distinct trampolines, 1.75 trampoline
    instructions PKI, GET/SET request mix; Figure 7 reports processing-time
    histograms in TSC kilocycles. *)

val name : string
val spec : ?seed:int -> unit -> Spec.t
val workload : ?seed:int -> unit -> Dlink_core.Workload.t

val request_types : string list
(** ["GET"; "SET"]. *)
