(** MySQL + TPC-C (OLTP-Bench) model.

    Profile targets (paper): 1611 distinct trampolines, 5.56 trampoline
    instructions PKI; New Order and Payment request types with latencies in
    the tens of milliseconds (Figure 8 / Table 6). *)

val name : string
val spec : ?seed:int -> unit -> Spec.t
val workload : ?seed:int -> unit -> Dlink_core.Workload.t

val request_types : string list
(** ["New Order"; "Payment"] — the types Figure 8 / Table 6 report. *)

val minor_request_types : string list
(** The remaining TPC-C transaction types, present in the request mix but
    not reported by the paper. *)

val table6_percentiles : float list
(** 50 / 75 / 90 / 95, as reported in Table 6. *)
