let name = "firefox"

let request_types =
  [ "Rendering"; "HTML5 Canvas"; "Data"; "DOM operations"; "Text parsing" ]

let spec ?(seed = 45) () =
  {
    Spec.name;
    seed;
    libs =
      [
        "libxul";
        "libnss";
        "libsqlite";
        "libgtk";
        "libglib";
        "libcairo";
        "libpango";
        "libX11";
        "libfreetype";
        "libfontconfig";
        "libjpeg";
        "libpng";
        "libz";
        "libstdcpp";
        "libm";
      ];
    n_trampolines = 2457;
    depth_weights = [ (1, 0.60); (2, 0.25); (3, 0.15) ];
    zipf_s = 1.3;
    terminal_compute = (570, 1260);
    terminal_loop_mean = 6.0;
    terminal_touch = ((3, 8), (1, 3));
    wrapper_compute = (10, 20);
    rtypes =
      List.map
        (fun (rname, weight, calls) ->
          {
            Spec.rname;
            weight;
            variants = 4;
            calls;
            inter_compute = (10, 20);
            segment_loop_mean = 1.4;
          })
        [
          ("Rendering", 0.25, (22, 38));
          ("HTML5 Canvas", 0.20, (18, 32));
          ("Data", 0.20, (25, 45));
          ("DOM operations", 0.20, (20, 36));
          ("Text parsing", 0.15, (28, 50));
        ];
    housekeeping_every = 16;
    housekeeping_chunk = 48;
    ifunc_fraction = 0.05;
    extra_import_factor = 1.2;
    app_data_bytes = 512 * 1024;
    lib_data_bytes = 48 * 1024;
    us_scale = 1.0;
    default_requests = 600;
    warmup_requests = 50;
    func_align = 256;
  }

let workload ?seed () = Synth.build (spec ?seed ())

let score_unit rname =
  match rname with "Rendering" | "HTML5 Canvas" -> "fps" | _ -> "ops"

(* Paper Table 5 Base magnitudes, used as the scoring anchor: the score is
   a unit conversion (ops or frames per unit time); what the simulation
   measures is the base-vs-enhanced latency ratio. *)
let paper_base rname =
  match rname with
  | "Rendering" -> 49.31
  | "HTML5 Canvas" -> 37.47
  | "Data" -> 22_499.0
  | "DOM operations" -> 16_547.0
  | "Text parsing" -> 214_897.0
  | _ -> 1.0

let scores ?anchor (run : Dlink_core.Experiment.run) =
  let anchor = Option.value anchor ~default:run in
  List.map
    (fun rname ->
      let mean = Dlink_core.Experiment.mean_latency_us run rname in
      let anchor_mean = Dlink_core.Experiment.mean_latency_us anchor rname in
      let score = if mean > 0.0 then paper_base rname *. anchor_mean /. mean else 0.0 in
      (rname, score_unit rname, score))
    request_types
