(** Declarative description of a synthetic application.

    The generator (see {!Synth}) turns a spec into object files whose
    *library-call profile* matches a real application's published profile:
    the number of distinct trampolines exercised (paper Table 3), the
    trampoline density per kilo-instruction (Table 2), and the call
    frequency skew (Figure 4).

    The model is built around {e call chains}: a chain of depth [d] is a
    path [app -> lib_1 -> ... -> lib_d] where every hop crosses a module
    boundary through the PLT.  Each hop is one distinct trampoline, so the
    trampoline universe has exactly [n_trampolines = sum of depths]
    entries.  Handlers invoke chain entry points with Zipf-distributed
    frequency; periodic housekeeping requests sweep cold chains so every
    trampoline is exercised at least once during measurement, as in the
    paper's long profiled runs. *)

type range = int * int
(** Inclusive integer range for generated magnitudes. *)

type rtype_spec = {
  rname : string;
  weight : float;  (** request-mix probability weight *)
  variants : int;  (** distinct handler bodies for this type *)
  calls : range;  (** chain-entry invocations per handler *)
  inter_compute : range;  (** ALU instructions between calls *)
  segment_loop_mean : float;
      (** handlers group call slots into segments wrapped in geometric
          loops with this mean (1.0 disables), providing realistic
          per-request latency variance *)
}

type t = {
  name : string;
  seed : int;
  libs : string list;  (** shared-library module names *)
  n_trampolines : int;  (** Table 3 target *)
  depth_weights : (int * float) list;  (** chain-depth distribution *)
  zipf_s : float;  (** Figure 4 skew *)
  terminal_compute : range;  (** work in chain-terminal functions *)
  terminal_loop_mean : float;
  terminal_touch : range * range;  (** (loads, stores) in terminals *)
  wrapper_compute : range;  (** work in intermediate chain hops *)
  rtypes : rtype_spec list;
  housekeeping_every : int;  (** every k-th request sweeps cold chains *)
  housekeeping_chunk : int;  (** chains touched per housekeeping request *)
  extra_import_factor : float;
      (** unused imports per module, as a fraction of used ones — makes the
          PLT sparse as observed for real binaries (§2) *)
  ifunc_fraction : float;
      (** fraction of chain-terminal functions exported as GNU ifuncs with
          multiple implementations (§2.4.1), as glibc does for string
          routines; the loader's [hw_level] picks the implementation *)
  app_data_bytes : int;
  lib_data_bytes : int;
  us_scale : float;
  default_requests : int;
  warmup_requests : int;
  func_align : int;
      (** function alignment at load time; larger values model the sparse
          code layout of production binaries (I-cache / I-TLB pressure) *)
}

val housekeeping_rtype : string
(** Name of the synthetic request type housing cold-chain sweeps; excluded
    from latency figures. *)

val validate : t -> (unit, string) result
