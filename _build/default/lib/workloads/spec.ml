type range = int * int

type rtype_spec = {
  rname : string;
  weight : float;
  variants : int;
  calls : range;
  inter_compute : range;
  segment_loop_mean : float;
}

type t = {
  name : string;
  seed : int;
  libs : string list;
  n_trampolines : int;
  depth_weights : (int * float) list;
  zipf_s : float;
  terminal_compute : range;
  terminal_loop_mean : float;
  terminal_touch : range * range;
  wrapper_compute : range;
  rtypes : rtype_spec list;
  housekeeping_every : int;
  housekeeping_chunk : int;
  extra_import_factor : float;
  ifunc_fraction : float;
  app_data_bytes : int;
  lib_data_bytes : int;
  us_scale : float;
  default_requests : int;
  warmup_requests : int;
  func_align : int;
}

let housekeeping_rtype = "_housekeeping"

let check cond msg = if cond then Ok () else Error msg

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let valid_range (lo, hi) = lo >= 0 && hi >= lo

let validate t =
  let* () = check (t.name <> "") "name must be non-empty" in
  let* () = check (t.libs <> []) "at least one library required" in
  let* () = check (t.n_trampolines > 0) "n_trampolines must be positive" in
  let* () =
    check
      (t.depth_weights <> []
      && List.for_all (fun (d, w) -> d >= 1 && w >= 0.0) t.depth_weights
      && List.exists (fun (_, w) -> w > 0.0) t.depth_weights)
      "depth_weights must contain positive-depth entries with a positive weight"
  in
  let* () =
    check
      (List.for_all (fun (d, _) -> d <= List.length t.libs) t.depth_weights)
      "chain depth cannot exceed the number of libraries"
  in
  let* () = check (t.zipf_s >= 0.0) "zipf_s must be non-negative" in
  let* () = check (valid_range t.terminal_compute) "terminal_compute range invalid" in
  let* () = check (t.terminal_loop_mean >= 1.0) "terminal_loop_mean must be >= 1" in
  let* () =
    check
      (valid_range (fst t.terminal_touch) && valid_range (snd t.terminal_touch))
      "terminal_touch ranges invalid"
  in
  let* () = check (valid_range t.wrapper_compute) "wrapper_compute range invalid" in
  let* () = check (t.rtypes <> []) "at least one request type required" in
  let* () =
    check
      (List.for_all
         (fun r ->
           r.rname <> "" && r.weight >= 0.0 && r.variants >= 1 && valid_range r.calls
           && valid_range r.inter_compute
           && r.segment_loop_mean >= 1.0)
         t.rtypes)
      "invalid request-type spec"
  in
  let* () =
    check (List.exists (fun r -> r.weight > 0.0) t.rtypes) "request mix has zero weight"
  in
  let* () = check (t.housekeeping_every >= 0) "housekeeping_every must be >= 0" in
  let* () =
    check
      (t.housekeeping_every = 0 || t.housekeeping_chunk > 0)
      "housekeeping_chunk must be positive when housekeeping is enabled"
  in
  let* () = check (t.extra_import_factor >= 0.0) "extra_import_factor negative" in
  let* () =
    check
      (t.ifunc_fraction >= 0.0 && t.ifunc_fraction <= 1.0)
      "ifunc_fraction out of range"
  in
  let* () = check (t.us_scale > 0.0) "us_scale must be positive" in
  let* () = check (t.default_requests > 0) "default_requests must be positive" in
  let* () = check (t.warmup_requests >= 0) "warmup_requests must be >= 0" in
  check
    (t.func_align >= 16 && t.func_align land (t.func_align - 1) = 0)
    "func_align must be a power of two >= 16"
