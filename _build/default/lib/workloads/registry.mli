(** All workloads by name, for the CLI and benchmark harness. *)

val all : (string * (?seed:int -> unit -> Dlink_core.Workload.t)) list
val find : string -> (?seed:int -> unit -> Dlink_core.Workload.t) option
val names : string list
