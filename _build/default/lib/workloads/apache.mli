(** Apache web server + SPECweb 2009 Support workload model.

    Profile targets (paper): 501 distinct trampolines, 12.23 trampoline
    instructions PKI, steep Figure 4 cutoff, six request types whose
    response-time CDFs span roughly 800–2400 µs. *)

val name : string
val spec : ?seed:int -> unit -> Spec.t
val workload : ?seed:int -> unit -> Dlink_core.Workload.t

val request_types : string list
(** The SPECweb-style request types reported in Figure 6. *)
