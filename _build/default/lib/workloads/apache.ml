let name = "apache"

let request_types = [ "Home"; "Catalog"; "FileCatalog"; "File"; "Index"; "Search" ]

let rtype rname weight calls =
  {
    Spec.rname;
    weight;
    variants = 32;
    calls;
    inter_compute = (90, 175);
    segment_loop_mean = 1.6;
  }

let spec ?(seed = 42) () =
  {
    Spec.name;
    seed;
    libs =
      [
        "libphp";
        "libc";
        "libssl";
        "libcrypto";
        "libz";
        "libxml2";
        "libpcre";
        "libapr";
        "libaprutil";
        "libm";
      ];
    n_trampolines = 501;
    depth_weights = [ (1, 0.25); (2, 0.35); (3, 0.40) ];
    zipf_s = 2.6;
    terminal_compute = (14, 40);
    terminal_loop_mean = 2.0;
    terminal_touch = ((2, 4), (0, 2));
    wrapper_compute = (6, 14);
    rtypes =
      [
        rtype "Home" 0.10 (35, 60);
        rtype "Catalog" 0.25 (45, 75);
        rtype "FileCatalog" 0.15 (50, 85);
        rtype "File" 0.20 (30, 55);
        rtype "Index" 0.15 (40, 65);
        rtype "Search" 0.15 (55, 95);
      ];
    housekeeping_every = 100;
    housekeeping_chunk = 16;
    ifunc_fraction = 0.12;
    extra_import_factor = 1.0;
    app_data_bytes = 128 * 1024;
    lib_data_bytes = 24 * 1024;
    us_scale = 300.0;
    default_requests = 2000;
    warmup_requests = 100;
    func_align = 512;
  }

let workload ?seed () = Synth.build (spec ?seed ())
