lib/workloads/apache.mli: Dlink_core Spec
