lib/workloads/synth.mli: Dlink_core Spec
