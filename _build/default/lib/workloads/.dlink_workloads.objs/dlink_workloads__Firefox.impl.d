lib/workloads/firefox.ml: Dlink_core List Option Spec Synth
