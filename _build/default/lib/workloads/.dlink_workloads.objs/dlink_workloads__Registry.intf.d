lib/workloads/registry.mli: Dlink_core
