lib/workloads/spec.mli:
