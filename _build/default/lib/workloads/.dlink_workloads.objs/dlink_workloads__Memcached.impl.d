lib/workloads/memcached.ml: Spec Synth
