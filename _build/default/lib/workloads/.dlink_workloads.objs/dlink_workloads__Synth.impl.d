lib/workloads/synth.ml: Array Dlink_core Dlink_obj Dlink_util List Printf Spec String
