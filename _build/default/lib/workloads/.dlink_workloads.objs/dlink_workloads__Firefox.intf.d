lib/workloads/firefox.mli: Dlink_core Spec
