lib/workloads/mysql.mli: Dlink_core Spec
