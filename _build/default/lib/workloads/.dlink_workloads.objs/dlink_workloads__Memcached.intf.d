lib/workloads/memcached.mli: Dlink_core Spec
