lib/workloads/mysql.ml: Spec Synth
