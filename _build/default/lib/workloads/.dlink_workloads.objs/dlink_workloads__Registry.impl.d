lib/workloads/registry.ml: Apache Firefox List Memcached Mysql
