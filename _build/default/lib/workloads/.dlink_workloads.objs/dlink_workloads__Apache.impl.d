lib/workloads/apache.ml: Spec Synth
