let name = "memcached"

let request_types = [ "GET"; "SET" ]

let spec ?(seed = 43) () =
  {
    Spec.name;
    seed;
    libs = [ "libc"; "libevent"; "libpthread" ];
    n_trampolines = 33;
    depth_weights = [ (1, 1.0) ];
    zipf_s = 1.5;
    terminal_compute = (275, 545);
    terminal_loop_mean = 1.8;
    terminal_touch = ((3, 6), (1, 2));
    wrapper_compute = (6, 12);
    rtypes =
      [
        {
          Spec.rname = "GET";
          weight = 0.7;
          variants = 8;
          calls = (14, 24);
          inter_compute = (6, 12);
          segment_loop_mean = 1.3;
        };
        {
          Spec.rname = "SET";
          weight = 0.3;
          variants = 8;
          calls = (18, 30);
          inter_compute = (6, 12);
          segment_loop_mean = 1.3;
        };
      ];
    housekeeping_every = 25;
    housekeeping_chunk = 8;
    ifunc_fraction = 0.25;
    extra_import_factor = 1.5;
    app_data_bytes = 2 * 1024 * 1024;
    lib_data_bytes = 64 * 1024;
    us_scale = 1.0;
    default_requests = 2500;
    warmup_requests = 150;
    func_align = 1024;
  }

let workload ?seed () = Synth.build (spec ?seed ())
