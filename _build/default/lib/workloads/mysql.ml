let name = "mysql"

let request_types = [ "New Order"; "Payment" ]
(* The full TPC-C mix also issues the three minor transaction types; the
   paper reports latencies "only for the most popular request types". *)
let minor_request_types = [ "Delivery"; "Order Status"; "Stock Level" ]
let table6_percentiles = [ 50.0; 75.0; 90.0; 95.0 ]

let spec ?(seed = 44) () =
  {
    Spec.name;
    seed;
    libs =
      [
        "libc";
        "libpthread";
        "libstdcpp";
        "libcrypt";
        "libssl";
        "libcrypto";
        "libz";
        "libaio";
        "libm";
        "libdl";
        "libreadline";
        "libsasl";
      ];
    n_trampolines = 1611;
    depth_weights = [ (1, 0.50); (2, 0.30); (3, 0.20) ];
    zipf_s = 2.0;
    terminal_compute = (217, 441);
    terminal_loop_mean = 1.5;
    terminal_touch = ((2, 5), (0, 2));
    wrapper_compute = (8, 16);
    rtypes =
      [
        {
          Spec.rname = "New Order";
          weight = 0.45;
          variants = 8;
          calls = (180, 280);
          inter_compute = (6, 14);
          segment_loop_mean = 1.5;
        };
        {
          Spec.rname = "Payment";
          weight = 0.43;
          variants = 8;
          calls = (90, 150);
          inter_compute = (6, 14);
          segment_loop_mean = 1.5;
        };
        {
          Spec.rname = "Delivery";
          weight = 0.04;
          variants = 2;
          calls = (200, 320);
          inter_compute = (6, 14);
          segment_loop_mean = 1.5;
        };
        {
          Spec.rname = "Order Status";
          weight = 0.04;
          variants = 2;
          calls = (60, 100);
          inter_compute = (6, 14);
          segment_loop_mean = 1.3;
        };
        {
          Spec.rname = "Stock Level";
          weight = 0.04;
          variants = 2;
          calls = (120, 200);
          inter_compute = (6, 14);
          segment_loop_mean = 1.4;
        };
      ];
    housekeeping_every = 16;
    housekeeping_chunk = 40;
    ifunc_fraction = 0.06;
    extra_import_factor = 0.8;
    app_data_bytes = 512 * 1024;
    lib_data_bytes = 64 * 1024;
    us_scale = 740.0;
    default_requests = 400;
    warmup_requests = 40;
    func_align = 256;
  }

let workload ?seed () = Synth.build (spec ?seed ())
