(** Plain-text table rendering for experiment reports. *)

type t

val create : headers:string list -> t
(** A table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded; longer rows raise
    [Invalid_argument]. *)

val render : t -> string
(** Aligned ASCII rendering with a header separator. *)

val print : ?title:string -> t -> unit
(** [print ?title t] writes the rendering (preceded by an underlined title)
    to stdout. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper, default 2 decimals. *)

val fmt_pct : float -> string
(** Formats a ratio as a signed percentage, e.g. [-0.042 -> "-4.20%"]. *)
