(** Discrete distributions used by the workload generators. *)

(** Zipf (power-law) distribution over ranks [0 .. n-1]; rank 0 is the most
    probable.  Used to shape library-call frequency skew (paper Figure 4). *)
module Zipf : sig
  type t

  val create : n:int -> s:float -> t
  (** [create ~n ~s] builds a sampler with [pmf k ∝ 1 / (k+1)^s].
      Raises [Invalid_argument] if [n <= 0] or [s < 0]. *)

  val n : t -> int
  val s : t -> float

  val pmf : t -> int -> float
  (** Probability of rank [k]. *)

  val sample : t -> Rng.t -> int
  (** Draw a rank via inverse-CDF binary search. *)
end

(** Weighted categorical distribution over ['a]. *)
module Categorical : sig
  type 'a t

  val create : ('a * float) list -> 'a t
  (** Weights must be non-negative with a positive sum. *)

  val sample : 'a t -> Rng.t -> 'a
end
