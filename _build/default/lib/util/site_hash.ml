(* 64-bit finalizer from MurmurHash3, applied to a combination of the two
   inputs; results are truncated to OCaml's 63-bit non-negative ints. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let mix2 a b =
  let z =
    mix64 (Int64.add (Int64.of_int a) (Int64.mul (Int64.of_int b) 0x9E3779B97F4A7C15L))
  in
  (* Shift by 2 so the result fits OCaml's 63-bit native int. *)
  Int64.to_int (Int64.shift_right_logical z 2)

let bernoulli ~site ~count ~p =
  let h = mix2 site count in
  let u = float_of_int (h land 0xFFFFFF) /. 16777216.0 in
  u < p

let index ~site ~count n =
  if n <= 0 then invalid_arg "Site_hash.index: bound must be positive";
  mix2 site count mod n
