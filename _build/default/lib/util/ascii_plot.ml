type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let safe_log10 v = if v <= 0.0 then neg_infinity else log10 v

let line_chart ?(width = 72) ?(height = 20) ?(log_x = false) ?(log_y = false)
    ?(x_label = "x") ?(y_label = "y") ~title series =
  let tx v = if log_x then safe_log10 v else v in
  let ty v = if log_y then safe_log10 v else v in
  let all =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (x, y) ->
            let x = tx x and y = ty y in
            if Float.is_finite x && Float.is_finite y then Some (x, y) else None)
          s.points)
      series
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  (match all with
  | [] -> Buffer.add_string buf "  (no data)\n"
  | _ ->
      let xs = List.map fst all and ys = List.map snd all in
      let xmin = List.fold_left min infinity xs
      and xmax = List.fold_left max neg_infinity xs
      and ymin = List.fold_left min infinity ys
      and ymax = List.fold_left max neg_infinity ys in
      let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
      let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun si s ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          List.iter
            (fun (x, y) ->
              let x = tx x and y = ty y in
              if Float.is_finite x && Float.is_finite y then begin
                let col =
                  int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
                and row =
                  height - 1
                  - int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
                in
                if row >= 0 && row < height && col >= 0 && col < width then
                  grid.(row).(col) <- glyph
              end)
            s.points)
        series;
      let axis_note dim log v = Printf.sprintf "%s%s" (if log then dim ^ "(log) " else dim ^ " ") (Table.fmt_float ~decimals:3 v) in
      Buffer.add_string buf
        (Printf.sprintf "  %s  ..  %s\n" (axis_note y_label log_y (if log_y then Float.pow 10.0 ymax else ymax))
           "");
      Array.iter
        (fun row ->
          Buffer.add_string buf "  |";
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
      Buffer.add_string buf
        (Printf.sprintf "   %s  ..  %s\n"
           (axis_note x_label log_x (if log_x then Float.pow 10.0 xmin else xmin))
           (axis_note x_label log_x (if log_x then Float.pow 10.0 xmax else xmax)));
      Buffer.add_string buf
        (Printf.sprintf "   %s bottom: %s\n" y_label
           (Table.fmt_float ~decimals:3 (if log_y then Float.pow 10.0 ymin else ymin)));
      List.iteri
        (fun si s ->
          Buffer.add_string buf
            (Printf.sprintf "   '%c' = %s\n" glyphs.(si mod Array.length glyphs) s.label))
        series);
  Buffer.contents buf

let render_points series =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "series %s:\n" s.label);
      List.iter
        (fun (x, y) ->
          Buffer.add_string buf (Printf.sprintf "  %12.4f  %14.6f\n" x y))
        s.points)
    series;
  Buffer.contents buf
