type t = { headers : string array; mutable rows : string array list }

let create ~headers = { headers = Array.of_list headers; rows = [] }

let add_row t cells =
  let n = Array.length t.headers in
  if List.length cells > n then invalid_arg "Table.add_row: too many cells";
  let row = Array.make n "" in
  List.iteri (fun i c -> row.(i) <- c) cells;
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let n = Array.length t.headers in
  let width = Array.make n 0 in
  let measure row =
    Array.iteri (fun i c -> width.(i) <- max width.(i) (String.length c)) row
  in
  measure t.headers;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let emit row =
    Array.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf c;
        if i < n - 1 then Buffer.add_string buf (String.make (width.(i) - String.length c) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  emit (Array.map (fun w -> String.make w '-') width);
  List.iter emit rows;
  Buffer.contents buf

let print ?title t =
  (match title with
  | None -> ()
  | Some s ->
      print_newline ();
      print_endline s;
      print_endline (String.make (String.length s) '='));
  print_string (render t)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_pct r = Printf.sprintf "%+.2f%%" (100.0 *. r)
