(** Deterministic per-site pseudo-randomness.

    Synthetic code needs data-dependent behaviour (branch directions, memory
    access targets) that is (a) varied, (b) exactly reproducible, and (c)
    identical between the base and enhanced simulator runs regardless of how
    many trampoline instructions execute.  We derive it from a stateless hash
    of [(site, occurrence count)] rather than from a shared RNG stream. *)

val mix2 : int -> int -> int
(** [mix2 a b] is a well-distributed non-negative hash of the pair. *)

val bernoulli : site:int -> count:int -> p:float -> bool
(** Deterministic coin flip: [true] with long-run frequency [p] over
    [count = 0, 1, 2, ...] for a fixed [site]. *)

val index : site:int -> count:int -> int -> int
(** [index ~site ~count n] deterministically selects an index in [\[0, n)]. *)
