type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = s }

(* Shift by 2 so the result fits OCaml's 63-bit native int (62 random bits). *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  next_nonneg t mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let float t x = unit_float t *. x

let bool t p = unit_float t < p

let exponential t ~mean =
  let u = unit_float t in
  -. mean *. log (1.0 -. u)

let normal t ~mu ~sigma =
  let u1 = 1.0 -. unit_float t and u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
