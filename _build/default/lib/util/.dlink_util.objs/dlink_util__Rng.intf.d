lib/util/rng.mli:
