lib/util/site_hash.mli:
