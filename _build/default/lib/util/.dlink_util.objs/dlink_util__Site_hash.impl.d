lib/util/site_hash.ml: Int64
