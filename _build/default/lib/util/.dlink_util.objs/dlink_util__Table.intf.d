lib/util/table.mli:
