module Zipf = struct
  type t = { n : int; s : float; cdf : float array }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for k = 0 to n - 1 do
      acc := !acc +. (1.0 /. Float.pow (float_of_int (k + 1)) s);
      cdf.(k) <- !acc
    done;
    let total = !acc in
    for k = 0 to n - 1 do
      cdf.(k) <- cdf.(k) /. total
    done;
    { n; s; cdf }

  let n t = t.n
  let s t = t.s

  let pmf t k =
    if k < 0 || k >= t.n then invalid_arg "Zipf.pmf: rank out of range";
    if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)

  let sample t rng =
    let u = Rng.float rng 1.0 in
    (* Smallest k with cdf.(k) >= u. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    in
    search 0 (t.n - 1)
end

module Categorical = struct
  type 'a t = { items : 'a array; cdf : float array }

  let create pairs =
    if pairs = [] then invalid_arg "Categorical.create: empty";
    List.iter
      (fun (_, w) ->
        if w < 0.0 then invalid_arg "Categorical.create: negative weight")
      pairs;
    let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
    if total <= 0.0 then invalid_arg "Categorical.create: zero total weight";
    let items = Array.of_list (List.map fst pairs) in
    let cdf = Array.make (Array.length items) 0.0 in
    let acc = ref 0.0 in
    List.iteri
      (fun i (_, w) ->
        acc := !acc +. (w /. total);
        cdf.(i) <- !acc)
      pairs;
    { items; cdf }

  let sample t rng =
    let u = Rng.float rng 1.0 in
    let n = Array.length t.items in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    in
    t.items.(search 0 (n - 1))
end
