(** Terminal renderings of the paper's figures (series plots).

    Every figure reproduction prints both a compact character plot and the
    underlying sampled points so the series can be compared against the
    paper or re-plotted externally. *)

type series = { label : string; points : (float * float) list }

val line_chart :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  ?log_y:bool ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string
(** Multi-series scatter/line chart using one glyph per series. *)

val render_points : series list -> string
(** Tabular dump of each series' sampled points. *)
