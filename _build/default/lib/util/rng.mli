(** Deterministic pseudo-random number generator (SplitMix64).

    All randomness in the simulator flows through this module so that every
    experiment is exactly reproducible from a seed.  SplitMix64 is fast,
    passes BigCrush, and supports cheap splitting into independent
    streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy sharing the current position. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [\[0, x)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian draw (Box-Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
