type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  { lo; hi; counts = Array.make bins 0; under = 0; over = 0; total = 0 }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let n = Array.length t.counts in
    let i = int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int n) in
    let i = if i >= n then n - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1
  end

let total t = t.total
let underflow t = t.under
let overflow t = t.over

let bin_width t = (t.hi -. t.lo) /. float_of_int (Array.length t.counts)

let bins t =
  let w = bin_width t in
  Array.to_list
    (Array.mapi
       (fun i c ->
         let blo = t.lo +. (float_of_int i *. w) in
         (blo, blo +. w, c))
       t.counts)

let fractions t =
  let denom = if t.total = 0 then 1.0 else float_of_int t.total in
  List.map (fun (blo, bhi, c) -> ((blo +. bhi) /. 2.0, float_of_int c /. denom)) (bins t)

let peak_center t =
  if t.total = 0 then invalid_arg "Histogram.peak_center: empty histogram";
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  let w = bin_width t in
  t.lo +. ((float_of_int !best +. 0.5) *. w)

let of_samples ~lo ~hi ~bins samples =
  let t = create ~lo ~hi ~bins in
  Array.iter (add t) samples;
  t
