(** Empirical cumulative distribution functions (paper Figures 6 and 8). *)

type t

val of_samples : float array -> t
(** Raises [Invalid_argument] on an empty array. *)

val eval : t -> float -> float
(** [eval t x] is the fraction of samples [<= x], in [\[0, 1\]]. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [\[0, 1\]]: smallest sample value at or above
    the requested cumulative fraction. *)

val points : ?max_points:int -> t -> (float * float) list
(** Down-sampled [(value, cumulative fraction)] staircase suitable for
    plotting. *)

val count : t -> int
val min_value : t -> float
val max_value : t -> float
