type t = {
  mutable data : float array;
  mutable len : int;
  mutable sorted : float array option; (* cache invalidated by add *)
}

let create () = { data = Array.make 16 0.0; len = 0; sorted = None }

let add t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- None

let count t = t.len

let check_nonempty t name =
  if t.len = 0 then invalid_arg ("Summary." ^ name ^ ": empty accumulator")

let mean t =
  check_nonempty t "mean";
  let acc = ref 0.0 in
  for i = 0 to t.len - 1 do
    acc := !acc +. t.data.(i)
  done;
  !acc /. float_of_int t.len

let stddev t =
  check_nonempty t "stddev";
  let m = mean t in
  let acc = ref 0.0 in
  for i = 0 to t.len - 1 do
    let d = t.data.(i) -. m in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int t.len)

let min t =
  check_nonempty t "min";
  let acc = ref t.data.(0) in
  for i = 1 to t.len - 1 do
    if t.data.(i) < !acc then acc := t.data.(i)
  done;
  !acc

let max t =
  check_nonempty t "max";
  let acc = ref t.data.(0) in
  for i = 1 to t.len - 1 do
    if t.data.(i) > !acc then acc := t.data.(i)
  done;
  !acc

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
      let s = Array.sub t.data 0 t.len in
      Array.sort compare s;
      t.sorted <- Some s;
      s

let percentile t p =
  check_nonempty t "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p out of range";
  let s = sorted t in
  let n = Array.length s in
  if n = 1 then s.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
  end

let samples t = Array.sub t.data 0 t.len

let of_array a =
  let t = create () in
  Array.iter (add t) a;
  t
