type t = { sorted : float array }

let of_samples samples =
  if Array.length samples = 0 then invalid_arg "Cdf.of_samples: empty";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  { sorted }

let count t = Array.length t.sorted
let min_value t = t.sorted.(0)
let max_value t = t.sorted.(Array.length t.sorted - 1)

let eval t x =
  (* Number of samples <= x, via binary search for the rightmost such. *)
  let n = Array.length t.sorted in
  let rec search lo hi =
    (* invariant: samples below lo are <= x, samples at/after hi are > x *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.sorted.(mid) <= x then search (mid + 1) hi else search lo mid
  in
  float_of_int (search 0 n) /. float_of_int n

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Cdf.quantile: q out of range";
  let n = Array.length t.sorted in
  let idx = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
  let idx = if idx < 0 then 0 else if idx >= n then n - 1 else idx in
  t.sorted.(idx)

let points ?(max_points = 200) t =
  let n = Array.length t.sorted in
  let step = if n <= max_points then 1 else n / max_points in
  let rec collect i acc =
    if i >= n then
      (* Always include the final sample so the staircase reaches 1.0. *)
      (t.sorted.(n - 1), 1.0) :: acc
    else
      collect (i + step)
        ((t.sorted.(i), float_of_int (i + 1) /. float_of_int n) :: acc)
  in
  List.rev (collect 0 [])
