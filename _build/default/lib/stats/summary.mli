(** Sample accumulator with order statistics.

    Stores all observations (experiments here are at most a few hundred
    thousand samples) so exact percentiles are available. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], linear interpolation between
    order statistics.  Raises [Invalid_argument] on an empty accumulator or
    out-of-range [p]. *)

val samples : t -> float array
(** Copy of the observations in insertion order. *)

val of_array : float array -> t
