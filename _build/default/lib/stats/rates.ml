let pki ~count ~instructions =
  if instructions = 0 then 0.0
  else 1000.0 *. float_of_int count /. float_of_int instructions

let change ~base ~enhanced = if base = 0.0 then 0.0 else (enhanced -. base) /. base

let speedup ~base ~enhanced = if enhanced = 0.0 then 1.0 else base /. enhanced
