lib/stats/rates.ml:
