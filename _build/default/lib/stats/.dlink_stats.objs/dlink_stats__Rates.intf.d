lib/stats/rates.mli:
