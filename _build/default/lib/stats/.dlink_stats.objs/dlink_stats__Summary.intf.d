lib/stats/summary.mli:
