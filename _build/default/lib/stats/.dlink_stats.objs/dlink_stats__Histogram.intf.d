lib/stats/histogram.mli:
