lib/stats/cdf.mli:
