(** Ratio helpers for counter reporting. *)

val pki : count:int -> instructions:int -> float
(** Events per kilo-instruction; 0 when [instructions = 0]. *)

val change : base:float -> enhanced:float -> float
(** Relative change [(enhanced - base) / base]; 0 when [base = 0]. *)

val speedup : base:float -> enhanced:float -> float
(** [base / enhanced]; 1.0 when [enhanced = 0]. *)
