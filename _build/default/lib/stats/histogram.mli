(** Fixed-width bin histogram (paper Figure 7 style). *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Raises [Invalid_argument] if [hi <= lo] or [bins <= 0].  Samples outside
    [\[lo, hi)] are counted in underflow/overflow buckets. *)

val add : t -> float -> unit
val total : t -> int
val underflow : t -> int
val overflow : t -> int

val bins : t -> (float * float * int) list
(** [(bin_lo, bin_hi, count)] per bin, in order. *)

val fractions : t -> (float * float) list
(** [(bin_center, fraction_of_total)] per bin; empty histogram gives zero
    fractions. *)

val peak_center : t -> float
(** Center of the highest-count bin.  Raises on an empty histogram. *)

val of_samples : lo:float -> hi:float -> bins:int -> float array -> t
