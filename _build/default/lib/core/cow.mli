(** Copy-on-write page accounting for the prefork server model (§5.5).

    A prefork server maps one read-only copy of all code and shares it with
    every worker via COW.  A software call-site patcher dirties a code page
    the first time it patches a call site on it, forcing a private copy in
    that worker.  This module tracks physical frames under that model and
    derives the memory-growth curve from a measured first-touch schedule
    (see {!Profile.site_first_touch}). *)

open Dlink_isa

type t

val create : processes:int -> t
(** Fresh prefork family: all code pages shared, zero private copies. *)

val processes : t -> int

val write : t -> pid:int -> page:int -> unit
(** Process [pid] dirties [page]: a private copy is made on first write,
    subsequent writes are free.  Raises [Invalid_argument] on a bad pid. *)

val private_copies : t -> int
(** Total privately copied pages across all processes. *)

val wasted_bytes : t -> int
(** [private_copies * page size]. *)

type growth_point = {
  calls_fraction : float;  (** fraction of the measured run elapsed *)
  pages_per_process : int;  (** pages each worker has privately copied *)
  wasted_mb : float;  (** across the whole prefork family *)
}

val lazy_patching_growth :
  site_order:(Addr.t * int) list ->
  total_calls:int ->
  processes:int ->
  samples:int ->
  growth_point list
(** Replays a lazy per-process patching schedule: every worker patches each
    call site at its first execution, dirtying the site's code page.  All
    workers follow the same measured schedule (they serve the same request
    mix), so the family-wide waste is [processes ×] the per-process curve.
    Returns [samples] points spanning the run. *)
