type strategy = Patch_after_fork | Patch_before_fork | Hardware

type report = {
  strategy : strategy;
  processes : int;
  patched_pages_per_process : int;
  copied_pages_total : int;
  wasted_bytes : int;
}

let strategy_to_string = function
  | Patch_after_fork -> "software, patch after fork"
  | Patch_before_fork -> "software, patch before fork"
  | Hardware -> "proposed hardware"

let analyze ~patched_pages ~processes strategy =
  if patched_pages < 0 || processes < 0 then
    invalid_arg "Memory_savings.analyze: negative input";
  let copied_pages_total =
    match strategy with
    | Patch_after_fork -> patched_pages * processes
    | Patch_before_fork ->
        (* One patched copy exists, shared by every process; only the
           original pristine mapping is "wasted" if also resident. *)
        patched_pages
    | Hardware -> 0
  in
  {
    strategy;
    processes;
    patched_pages_per_process =
      (match strategy with
      | Patch_after_fork -> patched_pages
      | Patch_before_fork | Hardware -> 0);
    copied_pages_total;
    wasted_bytes = copied_pages_total * Dlink_isa.Addr.page_bytes;
  }

let analyze_all ~patched_pages ~processes =
  List.map
    (analyze ~patched_pages ~processes)
    [ Patch_after_fork; Patch_before_fork; Hardware ]
