open Dlink_isa

type t = {
  n_processes : int;
  dirty : (int * int, unit) Hashtbl.t; (* (pid, page) -> copied *)
}

let create ~processes =
  if processes <= 0 then invalid_arg "Cow.create: processes must be positive";
  { n_processes = processes; dirty = Hashtbl.create 1024 }

let processes t = t.n_processes

let write t ~pid ~page =
  if pid < 0 || pid >= t.n_processes then invalid_arg "Cow.write: bad pid";
  if not (Hashtbl.mem t.dirty (pid, page)) then
    Hashtbl.replace t.dirty (pid, page) ()

let private_copies t = Hashtbl.length t.dirty
let wasted_bytes t = private_copies t * Addr.page_bytes

type growth_point = {
  calls_fraction : float;
  pages_per_process : int;
  wasted_mb : float;
}

let lazy_patching_growth ~site_order ~total_calls ~processes ~samples =
  if samples <= 0 then invalid_arg "Cow.lazy_patching_growth: samples";
  let total_calls = max 1 total_calls in
  (* Distinct pages dirtied by the time each schedule entry executes. *)
  let pages_seen = Hashtbl.create 256 in
  let schedule =
    List.filter_map
      (fun (site, call_idx) ->
        let page = Addr.page_of site in
        if Hashtbl.mem pages_seen page then None
        else begin
          Hashtbl.replace pages_seen page ();
          Some (call_idx, Hashtbl.length pages_seen)
        end)
      site_order
  in
  let pages_at idx =
    List.fold_left
      (fun acc (call_idx, n_pages) -> if call_idx <= idx then max acc n_pages else acc)
      0 schedule
  in
  List.init samples (fun i ->
      let frac = float_of_int (i + 1) /. float_of_int samples in
      let idx = int_of_float (frac *. float_of_int total_calls) in
      let per_process = pages_at idx in
      {
        calls_fraction = frac;
        pages_per_process = per_process;
        wasted_mb =
          float_of_int (per_process * processes * Addr.page_bytes) /. 1048576.0;
      })
