type request = { rtype : int; mname : string; fname : string }

type t = {
  wname : string;
  objs : Dlink_obj.Objfile.t list;
  request_type_names : string array;
  gen_request : int -> request;
  default_requests : int;
  warmup_requests : int;
  us_scale : float;
  ghz : float;
  func_align : int;
}

let cycles_to_us t cycles =
  float_of_int cycles /. (t.ghz *. 1000.0) *. t.us_scale
