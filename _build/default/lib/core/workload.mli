(** Workload abstraction consumed by the experiment runner.

    A workload bundles the object files of an application plus its
    libraries, a deterministic request generator (the "client"), and
    reporting parameters.  Concrete workloads modeling the paper's four
    applications live in the [dlink_workloads] library. *)

type request = { rtype : int; mname : string; fname : string }
(** One unit of work: invoke [mname.fname]; [rtype] indexes
    [request_type_names] for per-type latency reporting. *)

type t = {
  wname : string;
  objs : Dlink_obj.Objfile.t list;
  request_type_names : string array;
  gen_request : int -> request;
      (** deterministic request for a given index (the request mix) *)
  default_requests : int;
  warmup_requests : int;
      (** requests executed before the measurement window opens *)
  us_scale : float;
      (** multiplier applied to simulated microseconds so reported
          latencies land in the paper's range (documented per workload) *)
  ghz : float;  (** simulated clock, 3.0 as on the paper's Xeon E5450 *)
  func_align : int;
      (** function alignment used at load time (models code sparsity) *)
}

val cycles_to_us : t -> int -> float
