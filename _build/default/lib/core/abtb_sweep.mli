(** Figure 5: percentage of trampolines skipped as a function of ABTB size.

    Replays a recorded trampoline-call stream through standalone ABTBs of
    varying capacity.  An invocation whose trampoline is present skips; a
    miss executes the trampoline and (re)inserts the entry, exactly the
    steady-state behaviour of the retire-time population logic. *)

type point = { entries : int; skipped_pct : float }

val replay : entries:int -> ?ways:int -> int array -> float
(** Percentage (0–100) of stream elements that hit. *)

val sweep : ?sizes:int list -> ?ways:int -> int array -> point list
(** Default sizes: powers of two from 1 to 256 (the paper's x-axis). *)

val default_sizes : int list
