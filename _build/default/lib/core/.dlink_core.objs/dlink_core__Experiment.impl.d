lib/core/experiment.ml: Array Counters Dlink_uarch List Option Profile Sim Workload
