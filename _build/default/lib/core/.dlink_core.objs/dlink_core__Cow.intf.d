lib/core/cow.mli: Addr Dlink_isa
