lib/core/skip.mli: Abtb Addr Bloom Counters Dlink_isa Dlink_mach Dlink_uarch Event
