lib/core/skip.ml: Abtb Addr Bloom Counters Dlink_isa Dlink_mach Dlink_uarch Event Hashtbl Printf
