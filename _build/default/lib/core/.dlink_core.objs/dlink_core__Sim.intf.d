lib/core/sim.mli: Addr Config Counters Dlink_isa Dlink_linker Dlink_mach Dlink_obj Dlink_uarch Engine Loader Mode Process Profile Skip
