lib/core/memory_savings.ml: Dlink_isa List
