lib/core/profile.mli: Addr Dlink_isa Dlink_mach Event
