lib/core/sim.ml: Config Counters Dlink_linker Dlink_mach Dlink_uarch Engine Event Loader Memory Mode Option Printf Process Profile Skip
