lib/core/memory_savings.mli:
