lib/core/workload.mli: Dlink_obj
