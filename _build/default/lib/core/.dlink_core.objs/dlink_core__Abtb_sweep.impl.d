lib/core/abtb_sweep.ml: Abtb Array Dlink_uarch List
