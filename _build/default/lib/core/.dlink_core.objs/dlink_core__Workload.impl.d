lib/core/workload.ml: Dlink_obj
