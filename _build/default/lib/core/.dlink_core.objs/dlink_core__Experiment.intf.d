lib/core/experiment.mli: Config Counters Dlink_uarch Sim Skip Workload
