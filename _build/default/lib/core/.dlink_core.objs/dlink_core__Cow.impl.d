lib/core/cow.ml: Addr Dlink_isa Hashtbl List
