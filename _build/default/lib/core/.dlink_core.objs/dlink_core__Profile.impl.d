lib/core/profile.ml: Addr Array Dlink_isa Dlink_mach Event Hashtbl List
