lib/core/abtb_sweep.mli:
