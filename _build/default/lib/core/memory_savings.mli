(** §5.5 memory-overhead model: what a *software* call-site-patching
    approach costs in copied copy-on-write pages, versus the proposed
    hardware (which never touches code pages).

    Under the prefork server model, code pages are shared between parent
    and children via COW.  Patching a call site after fork dirties that
    page in every process; patching before fork keeps sharing but requires
    abandoning lazy resolution (§2.3). *)

type strategy =
  | Patch_after_fork  (** lazy per-process patching: every process copies *)
  | Patch_before_fork  (** eager pre-fork patching: one shared copy *)
  | Hardware  (** the paper's proposal: zero code-page copies *)

type report = {
  strategy : strategy;
  processes : int;
  patched_pages_per_process : int;
  copied_pages_total : int;
  wasted_bytes : int;
}

val strategy_to_string : strategy -> string

val analyze :
  patched_pages:int -> processes:int -> strategy -> report
(** [patched_pages] is the number of distinct code pages containing at
    least one patched call site (obtainable from a [Patched]-mode load via
    {!Dlink_linker.Loader.patched_pages}). *)

val analyze_all : patched_pages:int -> processes:int -> report list
