(** The simulator's instruction set.

    A deliberately small, x86-64-flavoured ISA: what matters for the paper's
    mechanism is the byte layout of code (cache lines, pages), the
    call/branch structure, and memory traffic — not arithmetic semantics.
    Hence [Alu] is a generic computation, and data-dependent behaviour
    (branch directions, access addresses) is derived deterministically from
    per-site hashes so that base and enhanced runs observe identical
    architectural behaviour.

    A PLT trampoline entry is exactly 16 bytes, as on x86-64 ELF:
    [Jmp_mem got_slot] (6 B) + [Push_info reloc] (5 B) + [Jmp plt0] (5 B). *)

(** Where a [Load]/[Store] points. *)
type mem_ref =
  | Fixed of Addr.t  (** always the same slot (e.g. a GOT entry, a global) *)
  | Region of { site : int; base : Addr.t; size : int }
      (** deterministic per-execution address inside [\[base, base+size)],
          8-byte aligned; [site] seeds the address sequence *)

type t =
  | Alu  (** generic register computation, no memory traffic *)
  | Load of mem_ref
  | Store of mem_ref
  | Call of Addr.t  (** direct near call; pushes the return address *)
  | Call_mem of Addr.t  (** indirect call through a memory slot *)
  | Jmp of Addr.t
  | Jmp_mem of Addr.t  (** indirect jump through a memory slot — the PLT trampoline *)
  | Cond of { target : Addr.t; site : int; p_taken : float }
      (** conditional branch; direction is [Site_hash.bernoulli site count] *)
  | Push_info of int  (** PLT stub: pushes a relocation index *)
  | Ret
  | Resolve
      (** dynamic-linker primitive: pops the relocation index and module id
          pushed by the PLT stub, binds the symbol, stores the target into
          the GOT slot, and jumps to the target *)
  | Halt

val byte_size : t -> int
(** Encoded size in bytes (fixed per constructor, x86-64-like). *)

val is_branch : t -> bool
(** Any instruction that can redirect control flow. *)

val is_indirect_branch : t -> bool
(** [Call_mem], [Jmp_mem], [Ret], [Resolve]. *)

val mem_slot : t -> Addr.t option
(** For memory-indirect control transfers, the slot the target is loaded
    from ([Jmp_mem]/[Call_mem]). *)

val pp : Format.formatter -> t -> unit
(** Disassembly-style rendering. *)

val to_string : t -> string
