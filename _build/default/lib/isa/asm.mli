(** Tiny one-region assembler with forward-label resolution.

    Code generation lowers a function body into a sequence of
    proto-instructions whose branch targets may be labels defined later in
    the same region.  [assemble] fixes the region's base address and
    resolves every label to a concrete {!Addr.t}. *)

type t
type label

val create : unit -> t

val fresh_label : t -> label
(** A new, not-yet-placed label. *)

val place : t -> label -> unit
(** Pin a label to the current emission offset.  Raises [Invalid_argument]
    if the label was already placed. *)

(** Branch targets in proto-instructions. *)
type target = To_label of label | To_addr of Addr.t

(** Proto-instructions: same shapes as {!Insn.t} with symbolic targets. *)
type proto =
  | P_alu
  | P_load of Insn.mem_ref
  | P_store of Insn.mem_ref
  | P_call of target
  | P_call_mem of Addr.t
  | P_jmp of target
  | P_jmp_mem of Addr.t
  | P_cond of { target : target; site : int; p_taken : float }
  | P_push_info of int
  | P_ret
  | P_resolve
  | P_halt

val emit : t -> proto -> unit

val pad_to : t -> int -> unit
(** Insert unreachable padding bytes so the next emission offset is a
    multiple of the argument (used for 16-byte PLT entries). *)

val size : t -> int
(** Bytes emitted so far. *)

val offset_of : t -> label -> int
(** Offset of a placed label; raises [Not_found] before assembly if the
    label was never placed. *)

val assemble : t -> base:Addr.t -> (int * Insn.t) list
(** [(offset, instruction)] pairs with all labels resolved against [base].
    Raises [Invalid_argument] if any referenced label is unplaced. *)
