type mem_ref =
  | Fixed of Addr.t
  | Region of { site : int; base : Addr.t; size : int }

type t =
  | Alu
  | Load of mem_ref
  | Store of mem_ref
  | Call of Addr.t
  | Call_mem of Addr.t
  | Jmp of Addr.t
  | Jmp_mem of Addr.t
  | Cond of { target : Addr.t; site : int; p_taken : float }
  | Push_info of int
  | Ret
  | Resolve
  | Halt

(* Sizes mirror common x86-64 encodings: call/jmp rel32 = 5, jmp/call
   *(rip+disp32) = 6, push imm32 = 5, jcc rel32 = 6, ret = 1.  Alu and
   memory operations use a representative 4-byte encoding. *)
let byte_size = function
  | Alu -> 4
  | Load _ | Store _ -> 4
  | Call _ -> 5
  | Call_mem _ -> 6
  | Jmp _ -> 5
  | Jmp_mem _ -> 6
  | Cond _ -> 6
  | Push_info _ -> 5
  | Ret -> 1
  | Resolve -> 8
  | Halt -> 1

let is_branch = function
  | Call _ | Call_mem _ | Jmp _ | Jmp_mem _ | Cond _ | Ret | Resolve -> true
  | Alu | Load _ | Store _ | Push_info _ | Halt -> false

let is_indirect_branch = function
  | Call_mem _ | Jmp_mem _ | Ret | Resolve -> true
  | Alu | Load _ | Store _ | Call _ | Jmp _ | Cond _ | Push_info _ | Halt -> false

let mem_slot = function
  | Jmp_mem slot | Call_mem slot -> Some slot
  | Alu | Load _ | Store _ | Call _ | Jmp _ | Cond _ | Push_info _ | Ret | Resolve | Halt ->
      None

let pp_mem_ref ppf = function
  | Fixed a -> Addr.pp ppf a
  | Region { site; base; size } ->
      Format.fprintf ppf "region(%a+%d)@@site%d" Addr.pp base size site

let pp ppf = function
  | Alu -> Format.pp_print_string ppf "alu"
  | Load m -> Format.fprintf ppf "load %a" pp_mem_ref m
  | Store m -> Format.fprintf ppf "store %a" pp_mem_ref m
  | Call a -> Format.fprintf ppf "call %a" Addr.pp a
  | Call_mem a -> Format.fprintf ppf "call *(%a)" Addr.pp a
  | Jmp a -> Format.fprintf ppf "jmp %a" Addr.pp a
  | Jmp_mem a -> Format.fprintf ppf "jmp *(%a)" Addr.pp a
  | Cond { target; p_taken; _ } -> Format.fprintf ppf "jcc %a (p=%.2f)" Addr.pp target p_taken
  | Push_info i -> Format.fprintf ppf "push $%d" i
  | Ret -> Format.pp_print_string ppf "ret"
  | Resolve -> Format.pp_print_string ppf "resolve"
  | Halt -> Format.pp_print_string ppf "halt"

let to_string i = Format.asprintf "%a" pp i
