lib/isa/asm.ml: Addr Hashtbl Insn List
