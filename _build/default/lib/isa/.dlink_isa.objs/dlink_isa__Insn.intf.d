lib/isa/insn.mli: Addr Format
