lib/isa/insn.ml: Addr Format
