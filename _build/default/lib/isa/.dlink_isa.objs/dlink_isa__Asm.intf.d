lib/isa/asm.mli: Addr Insn
