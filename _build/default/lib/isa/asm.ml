type label = int

type target = To_label of label | To_addr of Addr.t

type proto =
  | P_alu
  | P_load of Insn.mem_ref
  | P_store of Insn.mem_ref
  | P_call of target
  | P_call_mem of Addr.t
  | P_jmp of target
  | P_jmp_mem of Addr.t
  | P_cond of { target : target; site : int; p_taken : float }
  | P_push_info of int
  | P_ret
  | P_resolve
  | P_halt

type t = {
  mutable items : (int * proto) list; (* (offset, proto), reversed *)
  mutable cursor : int; (* next emission offset *)
  mutable next_label : int;
  offsets : (label, int) Hashtbl.t;
}

let create () = { items = []; cursor = 0; next_label = 0; offsets = Hashtbl.create 16 }

let fresh_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  l

let place t l =
  if Hashtbl.mem t.offsets l then invalid_arg "Asm.place: label already placed";
  Hashtbl.replace t.offsets l t.cursor

let proto_size = function
  | P_alu -> Insn.byte_size Insn.Alu
  | P_load m -> Insn.byte_size (Insn.Load m)
  | P_store m -> Insn.byte_size (Insn.Store m)
  | P_call _ -> Insn.byte_size (Insn.Call 0)
  | P_call_mem _ -> Insn.byte_size (Insn.Call_mem 0)
  | P_jmp _ -> Insn.byte_size (Insn.Jmp 0)
  | P_jmp_mem _ -> Insn.byte_size (Insn.Jmp_mem 0)
  | P_cond _ -> Insn.byte_size (Insn.Cond { target = 0; site = 0; p_taken = 0.0 })
  | P_push_info i -> Insn.byte_size (Insn.Push_info i)
  | P_ret -> Insn.byte_size Insn.Ret
  | P_resolve -> Insn.byte_size Insn.Resolve
  | P_halt -> Insn.byte_size Insn.Halt

let emit t p =
  t.items <- (t.cursor, p) :: t.items;
  t.cursor <- t.cursor + proto_size p

let pad_to t n =
  assert (n > 0);
  let rem = t.cursor mod n in
  if rem <> 0 then t.cursor <- t.cursor + (n - rem)

let size t = t.cursor

let offset_of t l = Hashtbl.find t.offsets l

let assemble t ~base =
  let resolve = function
    | To_addr a -> a
    | To_label l -> (
        match Hashtbl.find_opt t.offsets l with
        | Some off -> base + off
        | None -> invalid_arg "Asm.assemble: unplaced label")
  in
  let lower = function
    | P_alu -> Insn.Alu
    | P_load m -> Insn.Load m
    | P_store m -> Insn.Store m
    | P_call tg -> Insn.Call (resolve tg)
    | P_call_mem slot -> Insn.Call_mem slot
    | P_jmp tg -> Insn.Jmp (resolve tg)
    | P_jmp_mem slot -> Insn.Jmp_mem slot
    | P_cond { target; site; p_taken } ->
        Insn.Cond { target = resolve target; site; p_taken }
    | P_push_info i -> Insn.Push_info i
    | P_ret -> Insn.Ret
    | P_resolve -> Insn.Resolve
    | P_halt -> Insn.Halt
  in
  List.rev_map (fun (off, p) -> (off, lower p)) t.items
