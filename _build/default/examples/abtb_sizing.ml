(* ABTB sizing study (paper Figure 5 and Section 5.3).

   Records the trampoline-call stream of a workload, replays it through
   ABTBs of increasing capacity, and reports the skip rate together with
   the hardware storage cost (12 bytes per entry). *)

module E = Dlink_core.Experiment
module Sim = Dlink_core.Sim
module Sweep = Dlink_core.Abtb_sweep
module Table = Dlink_util.Table

let () =
  let name = match Sys.argv with [| _; n |] -> n | _ -> "memcached" in
  let gen =
    match Dlink_workloads.Registry.find name with
    | Some g -> g
    | None ->
        Printf.eprintf "unknown workload %s (try: %s)\n" name
          (String.concat ", " Dlink_workloads.Registry.names);
        exit 1
  in
  let w = gen ?seed:None () in
  Printf.printf "recording trampoline stream for %s ...\n%!" name;
  let run = E.run ~record_stream:true ~mode:Sim.Base w in
  Printf.printf "%d trampoline calls to %d distinct trampolines\n" run.E.tramp_calls
    run.E.distinct_trampolines;
  let t = Table.create ~headers:[ "ABTB entries"; "storage"; "% skipped" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.Sweep.entries;
          Printf.sprintf "%d B" (12 * p.Sweep.entries);
          Table.fmt_float p.Sweep.skipped_pct;
        ])
    (Sweep.sweep run.E.tramp_stream);
  Table.print ~title:"Figure 5: skip rate vs ABTB capacity" t;
  print_endline
    "\npaper: 16 entries (192 B) already skip >75% of trampolines; a\n\
     256-entry ABTB covers nearly all actively used trampolines."
