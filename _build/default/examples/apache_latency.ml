(* Apache SPECweb latency experiment (paper Figure 6, condensed).

   Runs the Apache workload model under conventional dynamic linking and
   under the paper's trampoline-skip emulation, then prints per-request-type
   latency quantiles and the mean improvement. *)

module E = Dlink_core.Experiment
module Sim = Dlink_core.Sim
module Table = Dlink_util.Table
module Cdf = Dlink_stats.Cdf

let () =
  let requests =
    match Sys.argv with [| _; n |] -> int_of_string n | _ -> 600
  in
  let w = Dlink_workloads.Apache.workload () in
  Printf.printf "apache model: %d requests per mode (use ARGV[1] to change)\n%!"
    requests;
  let base = E.run ~requests ~mode:Sim.Base w in
  let enh = E.run ~requests ~mode:Sim.Patched w in
  let t =
    Table.create
      ~headers:
        [ "Request type"; "p50 base"; "p50 enh"; "p90 base"; "p90 enh"; "mean delta" ]
  in
  List.iter
    (fun rtype ->
      let samples run =
        let _, s =
          Option.get (Array.find_opt (fun (n, _) -> n = rtype) run.E.latencies_us)
        in
        s
      in
      let cb = Cdf.of_samples (samples base) and ce = Cdf.of_samples (samples enh) in
      let mb = E.mean_latency_us base rtype and me = E.mean_latency_us enh rtype in
      Table.add_row t
        [
          rtype;
          Table.fmt_float ~decimals:0 (Cdf.quantile cb 0.5);
          Table.fmt_float ~decimals:0 (Cdf.quantile ce 0.5);
          Table.fmt_float ~decimals:0 (Cdf.quantile cb 0.9);
          Table.fmt_float ~decimals:0 (Cdf.quantile ce 0.9);
          Table.fmt_pct ((me -. mb) /. mb);
        ])
    Dlink_workloads.Apache.request_types;
  Table.print ~title:"Apache response times (us), base vs trampoline-skip" t;
  Printf.printf
    "\npaper: request processing latency improves by up to 4%% (Section 5.4)\n"
