(* Memcached processing-time histogram (paper Figure 7).

   Plots GET/SET request processing times in TSC kilocycle units for the
   base system and the trampoline-skip emulation; the enhanced peak shifts
   left (faster). *)

module E = Dlink_core.Experiment
module Sim = Dlink_core.Sim
module Histogram = Dlink_stats.Histogram
module Summary = Dlink_stats.Summary

let tsc_units us = us *. 3.0 (* 3 GHz: 1 us = 3 kilocycles *)

let () =
  let requests =
    match Sys.argv with [| _; n |] -> int_of_string n | _ -> 1500
  in
  let w = Dlink_workloads.Memcached.workload () in
  Printf.printf "memcached model: %d requests per mode\n%!" requests;
  let base = E.run ~requests ~mode:Sim.Base w in
  let enh = E.run ~requests ~mode:Sim.Patched w in
  List.iter
    (fun rtype ->
      let samples run =
        let _, s =
          Option.get (Array.find_opt (fun (n, _) -> n = rtype) run.E.latencies_us)
        in
        Array.map tsc_units s
      in
      let bs = samples base and es = samples enh in
      let all = Summary.of_array (Array.append bs es) in
      let lo = Summary.percentile all 2.0 and hi = Summary.percentile all 92.0 in
      let hb = Histogram.of_samples ~lo ~hi ~bins:20 bs
      and he = Histogram.of_samples ~lo ~hi ~bins:20 es in
      Printf.printf "\n%s requests (TSC units x1000):\n" rtype;
      List.iter2
        (fun (center, fb) (_, fe) ->
          Printf.printf "  %7.2f | %-30s | %-30s\n" center
            (String.make (int_of_float (fb *. 250.0)) '#')
            (String.make (int_of_float (fe *. 250.0)) '*'))
        (Histogram.fractions hb) (Histogram.fractions he);
      let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
      Printf.printf "  ('#' base, '*' enhanced)  mean base=%.2f enhanced=%.2f (%+.2f%%)\n"
        (mean bs) (mean es)
        (100.0 *. (mean es -. mean bs) /. mean bs))
    Dlink_workloads.Memcached.request_types
