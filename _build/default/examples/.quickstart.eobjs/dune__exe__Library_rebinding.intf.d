examples/library_rebinding.mli:
