examples/memcached_tail.mli:
