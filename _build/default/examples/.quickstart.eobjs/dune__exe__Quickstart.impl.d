examples/quickstart.ml: Dlink_core Dlink_obj Dlink_uarch Printf
