examples/apache_latency.ml: Array Dlink_core Dlink_stats Dlink_util Dlink_workloads List Option Printf Sys
