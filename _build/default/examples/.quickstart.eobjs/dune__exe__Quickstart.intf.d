examples/quickstart.mli:
