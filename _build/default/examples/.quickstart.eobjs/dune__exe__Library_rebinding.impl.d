examples/library_rebinding.ml: Dlink_core Dlink_linker Dlink_mach Dlink_obj Dlink_uarch Option Printf
