examples/memcached_tail.ml: Array Dlink_core Dlink_stats Dlink_workloads List Option Printf String Sys
