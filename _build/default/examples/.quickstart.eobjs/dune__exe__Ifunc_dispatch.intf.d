examples/ifunc_dispatch.mli:
