examples/abtb_sizing.mli:
