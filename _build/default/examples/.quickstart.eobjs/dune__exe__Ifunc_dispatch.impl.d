examples/ifunc_dispatch.ml: Dlink_core Dlink_linker Dlink_obj Dlink_uarch List Option Printf
