examples/abtb_sizing.ml: Dlink_core Dlink_util Dlink_workloads List Printf String Sys
