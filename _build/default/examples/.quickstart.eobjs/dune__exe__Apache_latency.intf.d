examples/apache_latency.mli:
