(* Quickstart: build a tiny two-module program by hand, run it under
   conventional dynamic linking (Base) and under the proposed hardware
   (Enhanced), and compare what the machine did.

   The app calls the library function [greet] through the PLT 1000 times;
   the mechanism should skip the trampoline on every call after the second
   (first call resolves lazily, second call trains the ABTB). *)

module Body = Dlink_obj.Body
module Objfile = Dlink_obj.Objfile
module Counters = Dlink_uarch.Counters
module Sim = Dlink_core.Sim

let app =
  Objfile.create_exn ~name:"app"
    [
      {
        Objfile.fname = "main";
        exported = false;
        body =
          [
            Body.Compute 4;
            Body.Loop
              {
                mean_iters = 1000.0;
                body = [ Body.Compute 2; Body.Call_import "greet" ];
              };
          ];
      };
    ]

let libgreet =
  Objfile.create_exn ~name:"libgreet"
    [
      {
        Objfile.fname = "greet";
        exported = true;
        body = [ Body.Compute 10; Body.Touch { loads = 2; stores = 1 } ];
      };
    ]

let run mode =
  let sim = Sim.create ~mode [ app; libgreet ] in
  Sim.call sim ~mname:"app" ~fname:"main";
  let c = Sim.counters sim in
  Printf.printf
    "%-9s instructions=%-7d cycles=%-7d tramp-instrs=%-5d tramp-calls=%-5d \
     skipped=%-5d resolver-runs=%d\n"
    (Sim.mode_to_string mode) c.Counters.instructions c.Counters.cycles
    c.Counters.tramp_instructions c.Counters.tramp_calls c.Counters.tramp_skips
    c.Counters.resolver_runs;
  c

let () =
  print_endline "quickstart: 1000 dynamic library calls, base vs enhanced";
  let base = run Sim.Base in
  let enh = run Sim.Enhanced in
  let saved = base.Counters.instructions - enh.Counters.instructions in
  Printf.printf
    "enhanced retired %d fewer instructions (the skipped trampolines)\n" saved;
  Printf.printf "cycle speedup: %.2f%%\n"
    (100.0
    *. (float_of_int (base.Counters.cycles - enh.Counters.cycles)
       /. float_of_int base.Counters.cycles))
