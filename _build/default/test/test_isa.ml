(* Tests for Dlink_isa: addresses, instructions, the mini assembler. *)

open Dlink_isa

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- Addr ---------------- *)

let test_addr_line_of () =
  checki "line 0" 0 (Addr.line_of 63);
  checki "line 1" 1 (Addr.line_of 64);
  checki "line of page" 64 (Addr.line_of 4096)

let test_addr_page_of () =
  checki "page 0" 0 (Addr.page_of 4095);
  checki "page 1" 1 (Addr.page_of 4096)

let test_addr_align_up () =
  checki "already aligned" 64 (Addr.align_up 64 64);
  checki "rounds up" 128 (Addr.align_up 65 64);
  checki "zero" 0 (Addr.align_up 0 16)

let test_addr_hex () =
  Alcotest.(check string) "hex" "0x400000" (Addr.to_hex 0x400000)

(* ---------------- Insn ---------------- *)

let test_insn_sizes_x86_like () =
  checki "call rel32" 5 (Insn.byte_size (Insn.Call 0));
  checki "jmp_mem" 6 (Insn.byte_size (Insn.Jmp_mem 0));
  checki "push imm" 5 (Insn.byte_size (Insn.Push_info 0));
  checki "ret" 1 (Insn.byte_size Insn.Ret);
  (* A PLT entry is exactly 16 bytes, as on x86-64 ELF. *)
  checki "plt entry = 16B" 16
    (Insn.byte_size (Insn.Jmp_mem 0)
    + Insn.byte_size (Insn.Push_info 0)
    + Insn.byte_size (Insn.Jmp 0))

let test_insn_classification () =
  checkb "call is branch" true (Insn.is_branch (Insn.Call 0));
  checkb "alu not branch" false (Insn.is_branch Insn.Alu);
  checkb "jmp_mem indirect" true (Insn.is_indirect_branch (Insn.Jmp_mem 0));
  checkb "call direct" false (Insn.is_indirect_branch (Insn.Call 0));
  checkb "ret indirect" true (Insn.is_indirect_branch Insn.Ret);
  checkb "resolve indirect" true (Insn.is_indirect_branch Insn.Resolve)

let test_insn_mem_slot () =
  Alcotest.(check (option int)) "jmp_mem slot" (Some 0x1000)
    (Insn.mem_slot (Insn.Jmp_mem 0x1000));
  Alcotest.(check (option int)) "call slot" (Some 0x2000)
    (Insn.mem_slot (Insn.Call_mem 0x2000));
  Alcotest.(check (option int)) "alu none" None (Insn.mem_slot Insn.Alu)

let test_insn_pp () =
  checkb "renders" true (String.length (Insn.to_string (Insn.Call 0x400123)) > 0)

(* ---------------- Asm ---------------- *)

let test_asm_sequential_offsets () =
  let asm = Asm.create () in
  Asm.emit asm Asm.P_alu;
  Asm.emit asm Asm.P_ret;
  let insns = Asm.assemble asm ~base:0x1000 in
  Alcotest.(check (list int)) "offsets" [ 0; 4 ] (List.map fst insns)

let test_asm_forward_label () =
  let asm = Asm.create () in
  let l = Asm.fresh_label asm in
  Asm.emit asm (Asm.P_jmp (Asm.To_label l));
  Asm.emit asm Asm.P_alu;
  Asm.place asm l;
  Asm.emit asm Asm.P_ret;
  match Asm.assemble asm ~base:100 with
  | (0, Insn.Jmp target) :: _ -> checki "forward target" (100 + 5 + 4) target
  | _ -> Alcotest.fail "expected jmp first"

let test_asm_backward_label () =
  let asm = Asm.create () in
  let l = Asm.fresh_label asm in
  Asm.place asm l;
  Asm.emit asm Asm.P_alu;
  Asm.emit asm (Asm.P_cond { target = Asm.To_label l; site = 1; p_taken = 0.5 });
  match Asm.assemble asm ~base:0 with
  | [ _; (4, Insn.Cond { target; _ }) ] -> checki "backward target" 0 target
  | _ -> Alcotest.fail "unexpected shape"

let test_asm_unplaced_label_rejected () =
  let asm = Asm.create () in
  let l = Asm.fresh_label asm in
  Asm.emit asm (Asm.P_jmp (Asm.To_label l));
  Alcotest.check_raises "unplaced" (Invalid_argument "Asm.assemble: unplaced label")
    (fun () -> ignore (Asm.assemble asm ~base:0))

let test_asm_double_place_rejected () =
  let asm = Asm.create () in
  let l = Asm.fresh_label asm in
  Asm.place asm l;
  Alcotest.check_raises "double place"
    (Invalid_argument "Asm.place: label already placed") (fun () -> Asm.place asm l)

let test_asm_pad_to () =
  let asm = Asm.create () in
  Asm.emit asm Asm.P_alu;
  Asm.pad_to asm 16;
  checki "padded" 16 (Asm.size asm);
  Asm.emit asm Asm.P_ret;
  checki "continues" 17 (Asm.size asm)

let test_asm_size_independent_of_targets () =
  let build target =
    let asm = Asm.create () in
    Asm.emit asm (Asm.P_call (Asm.To_addr target));
    Asm.emit asm Asm.P_ret;
    Asm.size asm
  in
  checki "size stable" (build 0) (build 0x7FFFFFFF)

let test_asm_offset_of () =
  let asm = Asm.create () in
  Asm.emit asm Asm.P_alu;
  let l = Asm.fresh_label asm in
  Asm.place asm l;
  checki "offset" 4 (Asm.offset_of asm l)

(* ---------------- property tests ---------------- *)

let proto_gen =
  QCheck.Gen.oneofl
    [ Asm.P_alu; Asm.P_ret; Asm.P_push_info 3; Asm.P_halt; Asm.P_jmp_mem 0x800 ]

let qcheck_tests =
  [
    QCheck.Test.make ~name:"assembled offsets strictly increase" ~count:300
      (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 50) proto_gen))
      (fun protos ->
        let asm = Asm.create () in
        List.iter (Asm.emit asm) protos;
        let insns = Asm.assemble asm ~base:0 in
        let rec increasing = function
          | (o1, i1) :: ((o2, _) :: _ as rest) ->
              o2 = o1 + Insn.byte_size i1 && increasing rest
          | _ -> true
        in
        increasing insns);
    QCheck.Test.make ~name:"align_up idempotent and >= input" ~count:500
      QCheck.(pair (int_range 0 1_000_000) (int_range 0 10))
      (fun (a, p) ->
        let n = 1 lsl p in
        let r = Addr.align_up a n in
        r >= a && Addr.align_up r n = r && r mod n = 0);
  ]

let () =
  Alcotest.run "dlink_isa"
    [
      ( "addr",
        [
          Alcotest.test_case "line_of" `Quick test_addr_line_of;
          Alcotest.test_case "page_of" `Quick test_addr_page_of;
          Alcotest.test_case "align_up" `Quick test_addr_align_up;
          Alcotest.test_case "hex" `Quick test_addr_hex;
        ] );
      ( "insn",
        [
          Alcotest.test_case "x86-like sizes" `Quick test_insn_sizes_x86_like;
          Alcotest.test_case "classification" `Quick test_insn_classification;
          Alcotest.test_case "mem slot" `Quick test_insn_mem_slot;
          Alcotest.test_case "pretty printing" `Quick test_insn_pp;
        ] );
      ( "asm",
        [
          Alcotest.test_case "sequential offsets" `Quick test_asm_sequential_offsets;
          Alcotest.test_case "forward label" `Quick test_asm_forward_label;
          Alcotest.test_case "backward label" `Quick test_asm_backward_label;
          Alcotest.test_case "unplaced label rejected" `Quick test_asm_unplaced_label_rejected;
          Alcotest.test_case "double place rejected" `Quick test_asm_double_place_rejected;
          Alcotest.test_case "pad_to" `Quick test_asm_pad_to;
          Alcotest.test_case "size target-independent" `Quick
            test_asm_size_independent_of_targets;
          Alcotest.test_case "offset_of" `Quick test_asm_offset_of;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
