test/test_linker.ml: Alcotest Array Codegen Dlink_isa Dlink_linker Dlink_obj Dump Hashtbl Image Linkmap List Loader Mode Option Printf QCheck QCheck_alcotest Result Space String
