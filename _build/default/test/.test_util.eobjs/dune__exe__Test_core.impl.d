test/test_core.ml: Abtb_sweep Alcotest Array Cow Dlink_core Dlink_linker Dlink_mach Dlink_obj Dlink_uarch Experiment List Memory_savings Option Profile QCheck QCheck_alcotest Sim Skip Workload
