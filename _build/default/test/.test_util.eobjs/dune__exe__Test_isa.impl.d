test/test_isa.ml: Addr Alcotest Asm Dlink_isa Insn List QCheck QCheck_alcotest String
