test/test_uarch.ml: Abtb Alcotest Assoc_table Bloom Btb Cache Config Counters Direction Dlink_mach Dlink_uarch Engine List QCheck QCheck_alcotest Ras Tlb
