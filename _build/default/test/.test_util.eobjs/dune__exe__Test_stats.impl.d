test/test_stats.ml: Alcotest Array Dlink_stats Gen List QCheck QCheck_alcotest
