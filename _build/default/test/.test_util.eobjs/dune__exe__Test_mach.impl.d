test/test_mach.ml: Alcotest Dlink_linker Dlink_mach Dlink_obj Event List Memory Option Process QCheck QCheck_alcotest String
