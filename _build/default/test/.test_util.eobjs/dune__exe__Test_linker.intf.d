test/test_linker.mli:
