test/test_obj.mli:
