test/test_mach.mli:
