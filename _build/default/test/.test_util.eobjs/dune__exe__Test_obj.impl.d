test/test_obj.ml: Alcotest Dlink_obj List QCheck QCheck_alcotest Result
