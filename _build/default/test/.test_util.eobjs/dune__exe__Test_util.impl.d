test/test_util.ml: Alcotest Array Dlink_util List QCheck QCheck_alcotest String
