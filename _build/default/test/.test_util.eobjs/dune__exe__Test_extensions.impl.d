test/test_extensions.ml: Alcotest Dlink_core Dlink_linker Dlink_mach Dlink_obj Dlink_uarch List Option Result Sim Skip
