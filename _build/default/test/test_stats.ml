(* Tests for Dlink_stats: summaries, histograms, CDFs, rates. *)

module Summary = Dlink_stats.Summary
module Histogram = Dlink_stats.Histogram
module Cdf = Dlink_stats.Cdf
module Rates = Dlink_stats.Rates

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

(* ---------------- Summary ---------------- *)

let test_summary_mean () =
  let s = Summary.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "mean" 2.5 (Summary.mean s)

let test_summary_minmax () =
  let s = Summary.of_array [| 5.0; -1.0; 3.0 |] in
  checkf "min" (-1.0) (Summary.min s);
  checkf "max" 5.0 (Summary.max s)

let test_summary_stddev () =
  let s = Summary.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  checkf "stddev" 2.0 (Summary.stddev s)

let test_summary_percentile_endpoints () =
  let s = Summary.of_array [| 10.0; 20.0; 30.0 |] in
  checkf "p0" 10.0 (Summary.percentile s 0.0);
  checkf "p100" 30.0 (Summary.percentile s 100.0);
  checkf "p50" 20.0 (Summary.percentile s 50.0)

let test_summary_percentile_interpolates () =
  let s = Summary.of_array [| 0.0; 10.0 |] in
  checkf "p25" 2.5 (Summary.percentile s 25.0)

let test_summary_empty_raises () =
  let s = Summary.create () in
  Alcotest.check_raises "empty mean" (Invalid_argument "Summary.mean: empty accumulator")
    (fun () -> ignore (Summary.mean s))

let test_summary_percentile_range () =
  let s = Summary.of_array [| 1.0 |] in
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Summary.percentile: p out of range") (fun () ->
      ignore (Summary.percentile s 101.0))

let test_summary_incremental () =
  let s = Summary.create () in
  for i = 1 to 1000 do
    Summary.add s (float_of_int i)
  done;
  checki "count" 1000 (Summary.count s);
  checkf "mean" 500.5 (Summary.mean s)

let test_summary_cache_invalidation () =
  let s = Summary.create () in
  Summary.add s 5.0;
  checkf "p50 before" 5.0 (Summary.percentile s 50.0);
  Summary.add s 1.0;
  checkf "min after add" 1.0 (Summary.percentile s 0.0)

(* ---------------- Histogram ---------------- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Histogram.add h 0.5;
  Histogram.add h 9.5;
  Histogram.add h 5.0;
  let bins = Histogram.bins h in
  let count_at i = let _, _, c = List.nth bins i in c in
  checki "bin0" 1 (count_at 0);
  checki "bin5" 1 (count_at 5);
  checki "bin9" 1 (count_at 9);
  checki "total" 3 (Histogram.total h)

let test_histogram_under_overflow () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Histogram.add h (-1.0);
  Histogram.add h 2.0;
  checki "under" 1 (Histogram.underflow h);
  checki "over" 1 (Histogram.overflow h);
  checki "total includes both" 2 (Histogram.total h)

let test_histogram_fractions_sum () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) [ 1.0; 2.0; 3.0; 7.0; 8.0 ];
  let sum = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 (Histogram.fractions h) in
  checkf "fractions sum to 1" 1.0 sum

let test_histogram_peak () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 4.1; 4.2; 4.3; 8.0 ];
  checkf "peak center" 4.5 (Histogram.peak_center h)

let test_histogram_rejects_bad_args () =
  Alcotest.check_raises "hi<=lo" (Invalid_argument "Histogram.create: hi must exceed lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4))

let test_histogram_boundary_value () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Histogram.add h 10.0;
  checki "hi is overflow" 1 (Histogram.overflow h)

(* ---------------- Cdf ---------------- *)

let test_cdf_eval () =
  let c = Cdf.of_samples [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "below" 0.0 (Cdf.eval c 0.5);
  checkf "middle" 0.5 (Cdf.eval c 2.0);
  checkf "above" 1.0 (Cdf.eval c 10.0)

let test_cdf_quantile () =
  let c = Cdf.of_samples [| 10.0; 20.0; 30.0; 40.0 |] in
  checkf "q0.5" 20.0 (Cdf.quantile c 0.5);
  checkf "q1" 40.0 (Cdf.quantile c 1.0);
  checkf "q0" 10.0 (Cdf.quantile c 0.0)

let test_cdf_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Cdf.of_samples: empty") (fun () ->
      ignore (Cdf.of_samples [||]))

let test_cdf_points_reach_one () =
  let c = Cdf.of_samples (Array.init 1000 float_of_int) in
  let points = Cdf.points ~max_points:50 c in
  let _, last = List.nth points (List.length points - 1) in
  checkf "last fraction 1" 1.0 last;
  checkb "downsampled" true (List.length points <= 60)

let test_cdf_unsorted_input () =
  let c = Cdf.of_samples [| 3.0; 1.0; 2.0 |] in
  checkf "min" 1.0 (Cdf.min_value c);
  checkf "max" 3.0 (Cdf.max_value c)

(* ---------------- Rates ---------------- *)

let test_rates_pki () =
  checkf "pki" 2.0 (Rates.pki ~count:20 ~instructions:10_000);
  checkf "pki zero denom" 0.0 (Rates.pki ~count:5 ~instructions:0)

let test_rates_change () =
  checkf "change" (-0.1) (Rates.change ~base:10.0 ~enhanced:9.0);
  checkf "change zero base" 0.0 (Rates.change ~base:0.0 ~enhanced:5.0)

let test_rates_speedup () =
  checkf "speedup" 2.0 (Rates.speedup ~base:10.0 ~enhanced:5.0)

(* ---------------- property tests ---------------- *)

let nonempty_floats =
  QCheck.(list_of_size (Gen.int_range 1 200) (float_range (-1000.0) 1000.0))

let qcheck_tests =
  [
    QCheck.Test.make ~name:"percentile monotone in p" ~count:200 nonempty_floats
      (fun l ->
        let s = Summary.of_array (Array.of_list l) in
        let p25 = Summary.percentile s 25.0
        and p50 = Summary.percentile s 50.0
        and p75 = Summary.percentile s 75.0 in
        p25 <= p50 && p50 <= p75);
    QCheck.Test.make ~name:"cdf eval within [0,1] and monotone" ~count:200
      QCheck.(pair nonempty_floats (float_range (-2000.0) 2000.0))
      (fun (l, x) ->
        let c = Cdf.of_samples (Array.of_list l) in
        let v = Cdf.eval c x and v' = Cdf.eval c (x +. 10.0) in
        v >= 0.0 && v <= 1.0 && v <= v');
    QCheck.Test.make ~name:"cdf quantile within sample range" ~count:200
      QCheck.(pair nonempty_floats (float_range 0.0 1.0))
      (fun (l, q) ->
        let c = Cdf.of_samples (Array.of_list l) in
        let v = Cdf.quantile c q in
        v >= Cdf.min_value c && v <= Cdf.max_value c);
    QCheck.Test.make ~name:"histogram total equals adds" ~count:200 nonempty_floats
      (fun l ->
        let h = Histogram.create ~lo:(-100.0) ~hi:100.0 ~bins:16 in
        List.iter (Histogram.add h) l;
        Histogram.total h = List.length l);
    QCheck.Test.make ~name:"summary mean within [min,max]" ~count:200 nonempty_floats
      (fun l ->
        let s = Summary.of_array (Array.of_list l) in
        Summary.mean s >= Summary.min s -. 1e-9
        && Summary.mean s <= Summary.max s +. 1e-9);
  ]

let () =
  Alcotest.run "dlink_stats"
    [
      ( "summary",
        [
          Alcotest.test_case "mean" `Quick test_summary_mean;
          Alcotest.test_case "min/max" `Quick test_summary_minmax;
          Alcotest.test_case "stddev" `Quick test_summary_stddev;
          Alcotest.test_case "percentile endpoints" `Quick test_summary_percentile_endpoints;
          Alcotest.test_case "percentile interpolation" `Quick test_summary_percentile_interpolates;
          Alcotest.test_case "empty raises" `Quick test_summary_empty_raises;
          Alcotest.test_case "percentile range" `Quick test_summary_percentile_range;
          Alcotest.test_case "incremental" `Quick test_summary_incremental;
          Alcotest.test_case "sorted cache invalidation" `Quick test_summary_cache_invalidation;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "under/overflow" `Quick test_histogram_under_overflow;
          Alcotest.test_case "fractions sum" `Quick test_histogram_fractions_sum;
          Alcotest.test_case "peak" `Quick test_histogram_peak;
          Alcotest.test_case "rejects bad args" `Quick test_histogram_rejects_bad_args;
          Alcotest.test_case "hi boundary overflows" `Quick test_histogram_boundary_value;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "eval" `Quick test_cdf_eval;
          Alcotest.test_case "quantile" `Quick test_cdf_quantile;
          Alcotest.test_case "empty rejected" `Quick test_cdf_empty_rejected;
          Alcotest.test_case "points reach one" `Quick test_cdf_points_reach_one;
          Alcotest.test_case "unsorted input" `Quick test_cdf_unsorted_input;
        ] );
      ( "rates",
        [
          Alcotest.test_case "pki" `Quick test_rates_pki;
          Alcotest.test_case "change" `Quick test_rates_change;
          Alcotest.test_case "speedup" `Quick test_rates_speedup;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
