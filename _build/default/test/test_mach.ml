(* Tests for Dlink_mach: memory, the interpreter, lazy resolution. *)

module Body = Dlink_obj.Body
module Objfile = Dlink_obj.Objfile
module Loader = Dlink_linker.Loader
module Space = Dlink_linker.Space
module Image = Dlink_linker.Image
module Mode = Dlink_linker.Mode
open Dlink_mach

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let func ?(exported = true) fname body = { Objfile.fname; exported; body }

let lib name exports body =
  Objfile.create_exn ~name (List.map (fun e -> func e body) exports)

let simple_program ?(mode = Mode.Lazy_binding) ?(main_body = [ Body.Call_import "f" ])
    ?(f_body = [ Body.Compute 4 ]) () =
  let app = Objfile.create_exn ~name:"app" [ func ~exported:false "main" main_body ] in
  Loader.load_exn
    ~opts:{ Loader.default_options with mode }
    [ app; lib "libx" [ "f" ] f_body ]

let run_main ?hooks linked =
  let p = Process.create ?hooks linked in
  Process.call p (Option.get (Loader.func_addr linked ~mname:"app" ~fname:"main"));
  p

(* ---------------- Memory ---------------- *)

let test_memory_read_default_zero () =
  let m = Memory.create () in
  checki "unwritten" 0 (Memory.read m 0x1000)

let test_memory_write_read () =
  let m = Memory.create () in
  Memory.write m 0x1000 42;
  checki "written" 42 (Memory.read m 0x1000)

let test_memory_zero_write_erases () =
  let m = Memory.create () in
  Memory.write m 8 7;
  Memory.write m 8 0;
  checki "no cells" 0 (Memory.cell_count m)

let test_memory_fingerprint_order_independent () =
  let m1 = Memory.create () and m2 = Memory.create () in
  Memory.write m1 8 1;
  Memory.write m1 16 2;
  Memory.write m2 16 2;
  Memory.write m2 8 1;
  checki "same fingerprint" (Memory.fingerprint m1) (Memory.fingerprint m2)

let test_memory_copy_isolated () =
  let m = Memory.create () in
  Memory.write m 8 1;
  let c = Memory.copy m in
  Memory.write c 8 9;
  checki "original untouched" 1 (Memory.read m 8)

(* ---------------- interpreter basics ---------------- *)

let test_call_runs_to_completion () =
  let linked = simple_program () in
  let p = run_main linked in
  checkb "retired > 0" true (Process.retired p > 0)

let test_sp_restored_after_call () =
  let linked = simple_program () in
  let p = Process.create linked in
  let sp0 = Process.sp p in
  Process.call p (Option.get (Loader.func_addr linked ~mname:"app" ~fname:"main"));
  checki "stack balanced" sp0 (Process.sp p)

let test_lazy_resolution_writes_got () =
  let linked = simple_program () in
  let p = run_main linked in
  let app = Option.get (Space.image_by_name linked.Loader.space "app") in
  let slot = Option.get (Image.got_slot app "f") in
  let f = Option.get (Loader.func_addr linked ~mname:"libx" ~fname:"f") in
  checki "GOT bound to f" f (Memory.read (Process.memory p) slot)

let test_resolver_runs_once_per_symbol () =
  (* Two calls to the same import: resolver work appears once. *)
  let linked =
    simple_program ~main_body:[ Body.Call_import "f"; Body.Call_import "f" ] ()
  in
  let resolver_jumps = ref 0 in
  let hooks =
    {
      Process.default_hooks with
      on_retire =
        (fun ev ->
          match ev.Event.branch with
          | Some (Event.Jump_resolver _) -> incr resolver_jumps
          | _ -> ());
    }
  in
  ignore (run_main ~hooks linked);
  checki "one resolution" 1 !resolver_jumps

let test_eager_mode_never_resolves () =
  let linked = simple_program ~mode:Mode.Eager_binding () in
  let resolver_jumps = ref 0 in
  let hooks =
    {
      Process.default_hooks with
      on_retire =
        (fun ev ->
          match ev.Event.branch with
          | Some (Event.Jump_resolver _) -> incr resolver_jumps
          | _ -> ());
    }
  in
  ignore (run_main ~hooks linked);
  checki "no resolution" 0 !resolver_jumps

let test_static_mode_no_plt_events () =
  let linked = simple_program ~mode:Mode.Static_link () in
  let plt_events = ref 0 in
  let hooks =
    {
      Process.default_hooks with
      on_retire = (fun ev -> if ev.Event.in_plt then incr plt_events);
    }
  in
  ignore (run_main ~hooks linked);
  checki "no plt instructions" 0 !plt_events

let test_lazy_first_call_executes_five_plt_instructions () =
  (* First call: entry jmp_mem + push + jmp plt0 + plt0 push + plt0 jmp_mem. *)
  let linked = simple_program () in
  let plt_events = ref 0 in
  let hooks =
    {
      Process.default_hooks with
      on_retire = (fun ev -> if ev.Event.in_plt then incr plt_events);
    }
  in
  ignore (run_main ~hooks linked);
  checki "five stub instructions" 5 !plt_events

let test_lazy_second_call_executes_one_plt_instruction () =
  let linked =
    simple_program ~main_body:[ Body.Call_import "f"; Body.Call_import "f" ] ()
  in
  let plt_events = ref 0 in
  let hooks =
    {
      Process.default_hooks with
      on_retire = (fun ev -> if ev.Event.in_plt then incr plt_events);
    }
  in
  ignore (run_main ~hooks linked);
  checki "5 + 1" 6 !plt_events

let test_cond_loop_terminates () =
  let linked =
    simple_program
      ~main_body:[ Body.Loop { mean_iters = 5.0; body = [ Body.Compute 1 ] } ]
      ()
  in
  let p = run_main linked in
  checkb "terminated" true (Process.retired p > 0)

let test_fuel_exhaustion_raises () =
  let linked =
    simple_program ~main_body:[ Body.Loop { mean_iters = 1e9; body = [ Body.Compute 1 ] } ] ()
  in
  let p = Process.create linked in
  let main = Option.get (Loader.func_addr linked ~mname:"app" ~fname:"main") in
  checkb "fault raised" true
    (try
       Process.call p ~fuel:1000 main;
       false
     with Process.Fault _ -> true)

let test_invalid_fetch_raises () =
  let linked = simple_program () in
  let p = Process.create linked in
  checkb "fault" true
    (try
       Process.call p 0x123;
       false
     with Process.Fault _ -> true)

(* ---------------- failure injection ---------------- *)

let test_dangling_extra_import_faults_cleanly () =
  (* An extra import has a PLT entry but no definition.  Under eager
     binding its GOT slot is null; calling it must fault, not wander. *)
  let app =
    Objfile.create_exn ~name:"app" ~extra_imports:[ "phantom" ]
      [ func ~exported:false "main" [ Body.Call_import "f" ] ]
  in
  let linked =
    Loader.load_exn
      ~opts:{ Loader.default_options with mode = Mode.Eager_binding }
      [ app; lib "libx" [ "f" ] [ Body.Compute 2 ] ]
  in
  let appimg = Option.get (Space.image_by_name linked.Loader.space "app") in
  let phantom_plt = Option.get (Image.plt_entry appimg "phantom") in
  let p = Process.create linked in
  checkb "null-slot fault" true
    (try
       Process.call p phantom_plt;
       false
     with Process.Fault msg ->
       String.length msg > 0)

let test_dangling_lazy_import_fails_in_resolver () =
  (* Under lazy binding the first call reaches the resolver, which cannot
     bind the symbol and must report it. *)
  let app =
    Objfile.create_exn ~name:"app" ~extra_imports:[ "phantom" ]
      [ func ~exported:false "main" [ Body.Call_import "f" ] ]
  in
  let linked =
    Loader.load_exn [ app; lib "libx" [ "f" ] [ Body.Compute 2 ] ]
  in
  let appimg = Option.get (Space.image_by_name linked.Loader.space "app") in
  let phantom_plt = Option.get (Image.plt_entry appimg "phantom") in
  let p = Process.create linked in
  checkb "resolver fault names symbol" true
    (try
       Process.call p phantom_plt;
       false
     with Process.Fault msg ->
       let rec contains i =
         i + 7 <= String.length msg
         && (String.sub msg i 7 = "phantom" || contains (i + 1))
       in
       contains 0)

let test_corrupted_got_faults () =
  (* A GOT slot overwritten with zero makes the trampoline fault rather
     than jump into the void. *)
  let linked = simple_program () in
  let p = Process.create linked in
  Process.call p (Option.get (Loader.func_addr linked ~mname:"app" ~fname:"main"));
  let app = Option.get (Space.image_by_name linked.Loader.space "app") in
  let slot = Option.get (Image.got_slot app "f") in
  Memory.write (Process.memory p) slot 0;
  checkb "fault on null GOT" true
    (try
       Process.call p (Option.get (Loader.func_addr linked ~mname:"app" ~fname:"main"));
       false
     with Process.Fault _ -> true)

(* ---------------- determinism ---------------- *)

let test_run_determinism () =
  let run () =
    let linked =
      simple_program
        ~main_body:
          [
            Body.Loop
              {
                mean_iters = 10.0;
                body =
                  [
                    Body.Compute 2;
                    Body.Touch { loads = 2; stores = 1 };
                    Body.Call_import "f";
                  ];
              };
          ]
        ~f_body:
          [ Body.If { p = 0.5; then_ = [ Body.Compute 3 ]; else_ = [ Body.Compute 1 ] } ]
        ()
    in
    let p = run_main linked in
    (Process.retired p, Process.arch_fingerprint p)
  in
  let r1, f1 = run () and r2, f2 = run () in
  checki "same retired" r1 r2;
  checki "same fingerprint" f1 f2

let test_redirect_hook_preserves_arch_state () =
  (* Redirecting a PLT call straight to the function must leave identical
     architectural state once the GOT is warm (the skip mechanism's core
     safety property, checked here at the interpreter level). *)
  let body =
    [
      Body.Call_import "f";
      (* warm the GOT *)
      Body.Call_import "f";
      Body.Call_import "f";
    ]
  in
  let run redirect =
    let linked = simple_program ~main_body:body () in
    let f = Option.get (Loader.func_addr linked ~mname:"libx" ~fname:"f") in
    let app = Option.get (Space.image_by_name linked.Loader.space "app") in
    let entry = Option.get (Image.plt_entry app "f") in
    let calls = ref 0 in
    let hooks =
      {
        Process.default_hooks with
        on_fetch_call =
          (fun ~pc:_ ~arch_target ->
            incr calls;
            (* Skip only after the first two calls (GOT warm). *)
            if redirect && arch_target = entry && !calls > 2 then f else arch_target);
      }
    in
    let p = run_main ~hooks linked in
    Process.arch_fingerprint p
  in
  checki "fingerprints equal" (run false) (run true)

(* ---------------- events ---------------- *)

let test_call_event_shape () =
  let linked = simple_program () in
  let seen = ref None in
  let hooks =
    {
      Process.default_hooks with
      on_retire =
        (fun ev ->
          match ev.Event.branch with
          | Some (Event.Call_direct { target; arch_target }) when !seen = None ->
              seen := Some (target = arch_target, ev.Event.store <> None)
          | _ -> ());
    }
  in
  ignore (run_main ~hooks linked);
  match !seen with
  | Some (same, pushes) ->
      checkb "unredirected" true same;
      checkb "pushes return addr" true pushes
  | None -> Alcotest.fail "no call event"

let test_trampoline_event_has_got_load () =
  let linked = simple_program () in
  let got_loads = ref 0 in
  let hooks =
    {
      Process.default_hooks with
      on_retire =
        (fun ev ->
          match ev.Event.branch with
          | Some (Event.Jump_indirect { slot; _ }) ->
              if ev.Event.load = Some slot then incr got_loads
          | _ -> ());
    }
  in
  ignore (run_main ~hooks linked);
  checkb "trampoline loads its GOT slot" true (!got_loads >= 1)

let test_event_count_matches_retired () =
  let linked = simple_program () in
  let events = ref 0 in
  let hooks =
    { Process.default_hooks with on_retire = (fun _ -> incr events) }
  in
  let p = run_main ~hooks linked in
  checki "one event per retired" (Process.retired p) !events

(* ---------------- property tests ---------------- *)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"region accesses stay within the region" ~count:50
      (QCheck.int_range 1 1000)
      (fun seed ->
        ignore seed;
        let data_bytes = 4096 in
        let app =
          Objfile.create_exn ~name:"app" ~data_bytes
            [
              func ~exported:false "main"
                [
                  Body.Loop
                    {
                      mean_iters = 20.0;
                      body = [ Body.Touch { loads = 2; stores = 2 } ];
                    };
                ];
            ]
        in
        let linked = Loader.load_exn [ app ] in
        let img = Option.get (Space.image_by_name linked.Loader.space "app") in
        let ok = ref true in
        let hooks =
          {
            Process.default_hooks with
            on_retire =
              (fun ev ->
                let in_data a =
                  a >= img.Image.data.base
                  && a < img.Image.data.base + img.Image.data.size
                in
                let in_stack a =
                  a >= linked.Loader.stack_base && a <= linked.Loader.stack_top
                in
                let check_side = function
                  | Some a when not (in_data a || in_stack a) -> ok := false
                  | _ -> ()
                in
                check_side ev.Event.load;
                check_side ev.Event.store)
          }
        in
        let p = Process.create ~hooks linked in
        Process.call p (Option.get (Loader.func_addr linked ~mname:"app" ~fname:"main"));
        !ok);
    QCheck.Test.make ~name:"arch fingerprint independent of uarch observers" ~count:30
      QCheck.unit
      (fun () ->
        let linked = simple_program () in
        let p1 = run_main linked in
        let p2 =
          run_main ~hooks:{ Process.default_hooks with on_retire = ignore } linked
        in
        Process.arch_fingerprint p1 = Process.arch_fingerprint p2);
  ]

let () =
  Alcotest.run "dlink_mach"
    [
      ( "memory",
        [
          Alcotest.test_case "default zero" `Quick test_memory_read_default_zero;
          Alcotest.test_case "write/read" `Quick test_memory_write_read;
          Alcotest.test_case "zero erases" `Quick test_memory_zero_write_erases;
          Alcotest.test_case "fingerprint order-free" `Quick
            test_memory_fingerprint_order_independent;
          Alcotest.test_case "copy isolated" `Quick test_memory_copy_isolated;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "runs to completion" `Quick test_call_runs_to_completion;
          Alcotest.test_case "stack balanced" `Quick test_sp_restored_after_call;
          Alcotest.test_case "lazy resolution writes GOT" `Quick test_lazy_resolution_writes_got;
          Alcotest.test_case "resolver once per symbol" `Quick test_resolver_runs_once_per_symbol;
          Alcotest.test_case "eager never resolves" `Quick test_eager_mode_never_resolves;
          Alcotest.test_case "static no plt events" `Quick test_static_mode_no_plt_events;
          Alcotest.test_case "first call: 5 stub insns" `Quick
            test_lazy_first_call_executes_five_plt_instructions;
          Alcotest.test_case "second call: 1 stub insn" `Quick
            test_lazy_second_call_executes_one_plt_instruction;
          Alcotest.test_case "loops terminate" `Quick test_cond_loop_terminates;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion_raises;
          Alcotest.test_case "invalid fetch" `Quick test_invalid_fetch_raises;
        ] );
      ( "faults",
        [
          Alcotest.test_case "dangling eager import" `Quick
            test_dangling_extra_import_faults_cleanly;
          Alcotest.test_case "dangling lazy import" `Quick
            test_dangling_lazy_import_fails_in_resolver;
          Alcotest.test_case "corrupted GOT" `Quick test_corrupted_got_faults;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "bit-identical reruns" `Quick test_run_determinism;
          Alcotest.test_case "redirect preserves state" `Quick
            test_redirect_hook_preserves_arch_state;
        ] );
      ( "events",
        [
          Alcotest.test_case "call event shape" `Quick test_call_event_shape;
          Alcotest.test_case "trampoline GOT load" `Quick test_trampoline_event_has_got_load;
          Alcotest.test_case "event per retired" `Quick test_event_count_matches_retired;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
