(* Tests for Dlink_obj: body IR and object files. *)

module Body = Dlink_obj.Body
module Objfile = Dlink_obj.Objfile

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checksl = Alcotest.(check (list string))

let func ?(exported = true) fname body = { Objfile.fname; exported; body }

(* ---------------- Body ---------------- *)

let test_body_validate_ok () =
  let body =
    [
      Body.Compute 3;
      Body.Touch { loads = 1; stores = 1 };
      Body.Loop { mean_iters = 2.0; body = [ Body.Compute 1 ] };
      Body.If { p = 0.5; then_ = [ Body.Compute 1 ]; else_ = [] };
    ]
  in
  checkb "valid" true (Body.validate body = Ok ())

let test_body_validate_bad_probability () =
  checkb "p>1 rejected" true
    (Body.validate [ Body.If { p = 1.5; then_ = []; else_ = [] } ] <> Ok ())

let test_body_validate_bad_loop () =
  checkb "mean<1 rejected" true
    (Body.validate [ Body.Loop { mean_iters = 0.5; body = [] } ] <> Ok ())

let test_body_validate_nested () =
  let bad = Body.Loop { mean_iters = 2.0; body = [ Body.Compute (-1) ] } in
  checkb "nested error found" true (Body.validate [ bad ] <> Ok ())

let test_body_imports_dedup_order () =
  let body =
    [
      Body.Call_import "b";
      Body.Call_import "a";
      Body.Call_import "b";
      Body.Loop { mean_iters = 2.0; body = [ Body.Call_import "c" ] };
    ]
  in
  checksl "dedup, first-use order" [ "b"; "a"; "c" ] (Body.imports body)

let test_body_imports_in_if_branches () =
  let body =
    [
      Body.If
        {
          p = 0.3;
          then_ = [ Body.Call_import "t" ];
          else_ = [ Body.Call_import "e" ];
        };
    ]
  in
  checksl "both branches" [ "t"; "e" ] (Body.imports body)

let test_body_local_calls () =
  checksl "locals" [ "f" ] (Body.local_calls [ Body.Call_local "f" ])

let test_body_static_count () =
  checki "compute" 5 (Body.instruction_count_static [ Body.Compute 5 ]);
  checki "touch" 3
    (Body.instruction_count_static [ Body.Touch { loads = 2; stores = 1 } ]);
  (* Loop adds one back-branch. *)
  checki "loop" 3
    (Body.instruction_count_static
       [ Body.Loop { mean_iters = 2.0; body = [ Body.Compute 2 ] } ]);
  (* If with else adds a branch and a jump. *)
  checki "if/else" 4
    (Body.instruction_count_static
       [ Body.If { p = 0.5; then_ = [ Body.Compute 1 ]; else_ = [ Body.Compute 1 ] } ]);
  (* If without else adds only the branch. *)
  checki "if" 2
    (Body.instruction_count_static
       [ Body.If { p = 0.5; then_ = [ Body.Compute 1 ]; else_ = [] } ])

(* ---------------- Objfile ---------------- *)

let test_objfile_create_ok () =
  match Objfile.create ~name:"m" [ func "f" [ Body.Compute 1 ] ] with
  | Ok t ->
      checki "one func" 1 (Objfile.func_count t);
      checksl "exports" [ "f" ] (Objfile.exports t)
  | Error e -> Alcotest.fail e

let test_objfile_duplicate_function_rejected () =
  checkb "dup rejected" true
    (Result.is_error
       (Objfile.create ~name:"m" [ func "f" []; func "f" [] ]))

let test_objfile_empty_name_rejected () =
  checkb "empty name" true (Result.is_error (Objfile.create ~name:"" []))

let test_objfile_unresolved_local_rejected () =
  checkb "unknown local" true
    (Result.is_error
       (Objfile.create ~name:"m" [ func "f" [ Body.Call_local "ghost" ] ]))

let test_objfile_local_call_resolves () =
  checkb "resolves" true
    (Result.is_ok
       (Objfile.create ~name:"m"
          [ func "f" [ Body.Call_local "g" ]; func "g" [] ]))

let test_objfile_imports_exclude_self () =
  let t =
    Objfile.create_exn ~name:"m"
      [ func "f" [ Body.Call_import "g"; Body.Call_import "ext" ]; func "g" [] ]
  in
  (* "g" is defined locally, so only "ext" is an import. *)
  checksl "imports" [ "ext" ] (Objfile.imports t)

let test_objfile_extra_imports () =
  let t =
    Objfile.create_exn ~name:"m" ~extra_imports:[ "x1"; "x2"; "x1" ]
      [ func "f" [ Body.Call_import "used" ] ]
  in
  checksl "body imports first, extras deduped" [ "used"; "x1"; "x2" ]
    (Objfile.imports t)

let test_objfile_non_exported_hidden () =
  let t = Objfile.create_exn ~name:"m" [ func ~exported:false "f" [] ] in
  checksl "no exports" [] (Objfile.exports t)

let test_objfile_find_func () =
  let t = Objfile.create_exn ~name:"m" [ func "f" [] ] in
  checkb "found" true (Objfile.find_func t "f" <> None);
  checkb "missing" true (Objfile.find_func t "g" = None)

let test_objfile_invalid_body_rejected () =
  checkb "invalid body" true
    (Result.is_error
       (Objfile.create ~name:"m"
          [ func "f" [ Body.Loop { mean_iters = 0.0; body = [] } ] ]))

let test_objfile_negative_data_rejected () =
  checkb "negative data" true
    (Result.is_error (Objfile.create ~name:"m" ~data_bytes:(-1) []))

(* ---------------- property tests ---------------- *)

let op_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then
            oneof
              [
                map (fun k -> Body.Compute k) (int_range 0 10);
                map2
                  (fun l s -> Body.Touch { loads = l; stores = s })
                  (int_range 0 3) (int_range 0 3);
                return (Body.Call_import "ext");
              ]
          else
            oneof
              [
                map (fun k -> Body.Compute k) (int_range 0 10);
                map
                  (fun body -> Body.Loop { mean_iters = 2.0; body })
                  (list_size (int_range 0 3) (self (n / 2)));
                map2
                  (fun t e -> Body.If { p = 0.5; then_ = t; else_ = e })
                  (list_size (int_range 0 2) (self (n / 2)))
                  (list_size (int_range 0 2) (self (n / 2)));
              ])
        n)

let body_gen = QCheck.Gen.list_size (QCheck.Gen.int_range 0 8) op_gen

let qcheck_tests =
  [
    QCheck.Test.make ~name:"generated bodies validate" ~count:300 (QCheck.make body_gen)
      (fun body -> Body.validate body = Ok ());
    QCheck.Test.make ~name:"static count non-negative" ~count:300 (QCheck.make body_gen)
      (fun body -> Body.instruction_count_static body >= 0);
    QCheck.Test.make ~name:"imports are duplicate-free" ~count:300 (QCheck.make body_gen)
      (fun body ->
        let imports = Body.imports body in
        List.length imports = List.length (List.sort_uniq compare imports));
  ]

let () =
  Alcotest.run "dlink_obj"
    [
      ( "body",
        [
          Alcotest.test_case "validate ok" `Quick test_body_validate_ok;
          Alcotest.test_case "bad probability" `Quick test_body_validate_bad_probability;
          Alcotest.test_case "bad loop" `Quick test_body_validate_bad_loop;
          Alcotest.test_case "nested error" `Quick test_body_validate_nested;
          Alcotest.test_case "imports dedup/order" `Quick test_body_imports_dedup_order;
          Alcotest.test_case "imports in branches" `Quick test_body_imports_in_if_branches;
          Alcotest.test_case "local calls" `Quick test_body_local_calls;
          Alcotest.test_case "static count" `Quick test_body_static_count;
        ] );
      ( "objfile",
        [
          Alcotest.test_case "create ok" `Quick test_objfile_create_ok;
          Alcotest.test_case "duplicate function" `Quick test_objfile_duplicate_function_rejected;
          Alcotest.test_case "empty name" `Quick test_objfile_empty_name_rejected;
          Alcotest.test_case "unresolved local" `Quick test_objfile_unresolved_local_rejected;
          Alcotest.test_case "local call resolves" `Quick test_objfile_local_call_resolves;
          Alcotest.test_case "imports exclude self" `Quick test_objfile_imports_exclude_self;
          Alcotest.test_case "extra imports" `Quick test_objfile_extra_imports;
          Alcotest.test_case "non-exported hidden" `Quick test_objfile_non_exported_hidden;
          Alcotest.test_case "find func" `Quick test_objfile_find_func;
          Alcotest.test_case "invalid body" `Quick test_objfile_invalid_body_rejected;
          Alcotest.test_case "negative data" `Quick test_objfile_negative_data_rejected;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
