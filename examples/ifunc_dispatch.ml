(* GNU ifunc and C++ virtual dispatch vs the trampoline-skip hardware
   (paper Section 2.4).

   Two lookup-table dispatch mechanisms look superficially like PLT calls:

   - GNU ifuncs resolve one of several implementations at load time and are
     called through the PLT exactly like ordinary imports — so the proposed
     hardware accelerates them for free;
   - C++ virtual functions dispatch through a function-pointer table in the
     data segment with a memory-indirect *call* — a different instruction
     sequence, which the hardware (correctly) leaves alone.

   This example builds a string library whose `copy` is an ifunc with AVX /
   SSE / generic implementations, plus a shapes library dispatched through a
   vtable, and shows which calls get skipped. *)

module Body = Dlink_obj.Body
module Objfile = Dlink_obj.Objfile
module Loader = Dlink_linker.Loader
module C = Dlink_uarch.Counters
module Sim = Dlink_core.Sim

let libstring =
  Objfile.create_exn ~name:"libstring"
    ~ifuncs:
      [ { Objfile.iname = "copy"; candidates = [ "copy_avx"; "copy_sse"; "copy_generic" ] } ]
    [
      { Objfile.fname = "copy_avx"; exported = true; body = [ Body.Compute 3 ] };
      { Objfile.fname = "copy_sse"; exported = true; body = [ Body.Compute 7 ] };
      { Objfile.fname = "copy_generic"; exported = true; body = [ Body.Compute 15 ] };
    ]

let libshapes =
  Objfile.create_exn ~name:"libshapes"
    [
      { Objfile.fname = "circle_area"; exported = true; body = [ Body.Compute 5 ] };
      { Objfile.fname = "square_area"; exported = true; body = [ Body.Compute 6 ] };
    ]

let app =
  Objfile.create_exn ~name:"app"
    ~vtables:[ { Objfile.vname = "shape_vt"; entries = [ "circle_area"; "square_area" ] } ]
    [
      {
        Objfile.fname = "main";
        exported = false;
        body =
          [
            Body.Loop
              {
                mean_iters = 200.0;
                body =
                  [
                    Body.Call_import "copy";
                    Body.Call_virtual { vtable = "shape_vt"; slot = 0 };
                    Body.Call_virtual { vtable = "shape_vt"; slot = 1 };
                    Body.Compute 4;
                  ];
              };
          ];
      };
    ]

let run () =
  let sim = Sim.create ~mode:Sim.Enhanced [ app; libstring; libshapes ] in
  Sim.call sim ~mname:"app" ~fname:"main";
  let abtb_entries =
    match Sim.skip sim with
    | Some skip -> Dlink_uarch.Abtb.valid_count (Dlink_pipeline.Skip.abtb skip)
    | None -> 0
  in
  (Sim.counters sim, abtb_entries)

let () =
  (* Which implementation does the loader pick at each capability level? *)
  List.iter
    (fun (label, hw_level) ->
      let linked =
        Loader.load_exn
          ~opts:{ Loader.default_options with hw_level }
          [ app; libstring; libshapes ]
      in
      let target =
        Option.get (Dlink_linker.Linkmap.lookup_addr linked.Loader.linkmap "copy")
      in
      let name =
        List.find
          (fun f -> Loader.func_addr linked ~mname:"libstring" ~fname:f = Some target)
          [ "copy_avx"; "copy_sse"; "copy_generic" ]
      in
      Printf.printf "hw_level=%-2d (%-12s) ifunc 'copy' resolves to %s\n" hw_level
        label name)
    [ ("modern AVX", 99); ("SSE only", 1); ("baseline", 0) ];

  let c, abtb_entries = run () in
  Printf.printf
    "\nmixed dispatch loop (1 ifunc call + 2 virtual calls per iteration):\n";
  Printf.printf "  PLT (ifunc) calls : %d, skipped by the hardware: %d (%.1f%%)\n"
    c.C.tramp_calls c.C.tramp_skips
    (100.0 *. float_of_int c.C.tramp_skips /. float_of_int (max 1 c.C.tramp_calls));
  Printf.printf
    "  virtual calls dispatch through the vtable, not the PLT: the ABTB holds\n\
    \  %d entry(ies) — only the ifunc trampoline — exactly as Section 2.4.2\n\
    \  predicts (different instruction sequence, no trampoline to skip).\n"
    abtb_entries
