(* Library rebinding safety demo (paper Sections 3.2-3.3).

   The whole point of the Bloom-filter guard is that the mechanism stays
   architecturally correct when a GOT entry changes — e.g. a library is
   unloaded and replaced, or a symbol is re-resolved.  This example:

   1. trains the ABTB on a hot library call (calls are skipped),
   2. rebinds the symbol's GOT slot to a different implementation,
   3. shows the retired store hits the Bloom filter and clears the ABTB,
   4. shows the next call executes the trampoline, reaches the *new*
      implementation, and re-trains the ABTB for further skipping.

   The simulator runs with [verify_targets] on: a single stale skip would
   raise [Skip.Misspeculation]. *)

module Body = Dlink_obj.Body
module Objfile = Dlink_obj.Objfile
module Loader = Dlink_linker.Loader
module Space = Dlink_linker.Space
module Image = Dlink_linker.Image
module Memory = Dlink_mach.Memory
module Process = Dlink_mach.Process
module C = Dlink_uarch.Counters
module Sim = Dlink_core.Sim
module Skip = Dlink_pipeline.Skip

let app =
  Objfile.create_exn ~name:"app"
    [
      { Objfile.fname = "main"; exported = false; body = [ Body.Call_import "impl" ] };
    ]

(* Two candidate implementations of the same interface symbol, like a
   library upgrade: v1 exports "impl"; v2's function sits at a different
   address. *)
let libv =
  Objfile.create_exn ~name:"libv"
    [
      { Objfile.fname = "impl"; exported = true; body = [ Body.Compute 5 ] };
      { Objfile.fname = "impl_v2"; exported = true; body = [ Body.Compute 9 ] };
    ]

let () =
  let skip_cfg = { Skip.default_config with verify_targets = true } in
  let sim = Sim.create ~skip_cfg ~mode:Sim.Enhanced [ app; libv ] in
  let c = Sim.counters sim in
  let stat tag =
    Printf.printf "%-28s calls=%-3d skips=%-3d abtb-clears=%d\n%!" tag
      c.C.tramp_calls c.C.tramp_skips c.C.abtb_clears
  in
  for _ = 1 to 5 do
    Sim.call sim ~mname:"app" ~fname:"main"
  done;
  stat "after 5 calls (v1 bound):";

  (* Rebind: write impl_v2's address into the GOT slot for "impl", as a
     dynamic loader would when replacing the library.  The store retires
     through the skip controller exactly like any other store. *)
  let linked = Sim.linked sim in
  let appimg = Option.get (Space.image_by_name linked.Loader.space "app") in
  let slot = Option.get (Image.got_slot appimg "impl") in
  let v2 = Option.get (Loader.func_addr linked ~mname:"libv" ~fname:"impl_v2") in
  Memory.write (Process.memory (Sim.process sim)) slot v2;
  Option.iter
    (fun skip ->
      Skip.on_retire skip
        {
          Dlink_mach.Event.pc = 0;
          size = 4;
          in_plt = false;
          load = None;
          load2 = None;
          store = Some slot;
          branch = None;
        })
    (Sim.skip sim);
  stat "after GOT rebinding store:";

  for _ = 1 to 5 do
    Sim.call sim ~mname:"app" ~fname:"main"
  done;
  stat "after 5 more calls (v2):";
  print_endline
    "\nno Misspeculation was raised: every skip matched the live GOT state,\n\
     and the rebinding store cleared the ABTB exactly once (Bloom filter\n\
     has no false negatives)."
