(* Multi-tenant scheduling demo (paper Section 3.3).

   Three server processes — apache, memcached, mysql — share one core
   under a round-robin scheduler.  What happens to the ABTB at each
   context switch is the policy axis:

   - flush             : the ABTB empties with the TLBs, every process
                         restarts cold each quantum;
   - asid              : entries are tagged with an address-space id and
                         survive, so a process resumes warm;
   - asid-shared-guard : additionally, GOT stores broadcast on a
                         coherence bus so a rebinding by one core's
                         process invalidates the guarded entries of every
                         other core.

   The demo runs the same deterministic mix under all three policies and
   then shows a cross-core rebinding store knocking out a sibling core's
   entries. *)

module Image = Dlink_linker.Image
module Space = Dlink_linker.Space
module Loader = Dlink_linker.Loader
module Memory = Dlink_mach.Memory
module Process = Dlink_mach.Process
module Coherence = Dlink_mach.Coherence
module C = Dlink_uarch.Counters
module Policy = Dlink_sched.Policy
module Sched = Dlink_sched.Scheduler
module W = Dlink_workloads.Registry

let mix = [ "apache"; "memcached"; "mysql" ]
let workloads () = List.map (fun n -> (Option.get (W.find n)) ?seed:None ()) mix

let () =
  print_endline "Three tenants, one core, quantum = 5 requests:\n";
  Printf.printf "%-18s %8s %8s %10s %8s\n" "policy" "skip %" "CPI" "abtb-clrs"
    "switches";
  List.iter
    (fun policy ->
      let sched =
        Sched.create ~policy ~quantum:5 ~cores:1 ~requests:200 (workloads ())
      in
      Sched.run sched;
      let c = Sched.system_counters sched in
      Printf.printf "%-18s %8.2f %8.3f %10d %8d\n%!" (Policy.to_string policy)
        (100.0 *. float_of_int c.C.tramp_skips
        /. float_of_int (max 1 c.C.tramp_calls))
        (float_of_int c.C.cycles /. float_of_int (max 1 c.C.instructions))
        c.C.abtb_clears (Sched.switches sched))
    Policy.all;
  print_endline
    "\nASID tags keep each tenant's ABTB working set alive across switches:\n\
     the skip rate recovers what flushing threw away, without any change\n\
     to the set-index contention the tenants still exert on each other.\n";

  (* Cross-core GOT coherence.  Two memcached instances on two cores; the
     loader rebinds a symbol in process 1's address space.  Under
     asid-shared-guard the retired store is published on the bus, and the
     sibling core's skip unit — whose Bloom filter guards the same slot
     addresses, since without ASLR both processes share a layout — clears
     its tables rather than risk a stale skip. *)
  print_endline "Cross-core rebinding under asid-shared-guard:";
  let sched =
    Sched.create ~policy:Policy.Asid_shared_guard ~quantum:10 ~cores:2
      ~requests:150
      (List.map
         (fun n -> (Option.get (W.find n)) ?seed:None ())
         [ "memcached"; "memcached" ])
  in
  Sched.run sched;
  let sys_before = Sched.system_counters sched in
  let p1 = Sched.proc sched 1 in
  let linked = Sched.proc_linked p1 in
  let appimg = (Space.images linked.Loader.space).(0) in
  let slot =
    Hashtbl.fold
      (fun _ a acc -> match acc with None -> Some a | Some b -> Some (min a b))
      appimg.Image.got_slots None
    |> Option.get
  in
  Printf.printf "  before store: abtb_clears=%d coherence_invalidations=%d\n"
    sys_before.C.abtb_clears sys_before.C.coherence_invalidations;
  Sched.retire_got_store sched ~pid:1 slot;
  let sys_after = Sched.system_counters sched in
  Printf.printf "  after  store: abtb_clears=%d coherence_invalidations=%d\n"
    sys_after.C.abtb_clears sys_after.C.coherence_invalidations;
  Printf.printf "  bus: published=%d delivered=%d\n"
    (Coherence.published (Sched.bus sched))
    (Coherence.delivered (Sched.bus sched));
  print_endline
    "\nthe store cleared the publishing core's own tables AND, via the bus,\n\
     the sibling core's guarded entries — the invalidation a shared-memory\n\
     dynamic loader needs for the mechanism to stay correct across cores."
